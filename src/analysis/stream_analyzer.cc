#include "analysis/stream_analyzer.h"

#include <utility>

#include "ops/op_kind.h"

namespace simdram
{

namespace
{

/**
 * Concrete state of one storage location. "Current" means the
 * location holds the object's latest value; "Stale" that a newer
 * value lives in the OTHER location (so a read here observes outdated
 * data); "Unwritten" that nothing ever produced data here. The
 * invariant a full-write ISA gives us: a location only ever goes
 * Stale because the other one went Current.
 */
enum class LocState : uint8_t
{
    Unwritten,
    Stale,
    Current,
};

/** Per-object dataflow state the forward walk evolves. */
struct ObjState
{
    LocState vert = LocState::Unwritten;
    LocState host = LocState::Unwritten;
    /** The validator's layout flag: a full vertical write happened
     *  (or the entry view reported the object vertical). */
    bool vflag = false;
    /**
     * Hoisting-pass facts, tracked with EXACTLY the hoistPass state
     * machine (src/stream/passes.cc) so the Redundant* rules fire
     * precisely when the optimizer would elide: mirror = the two
     * images coincide; hasConst = both hold constVal everywhere.
     * Entry is all-false even in FromView mode — cross-submission
     * redundancy is the runtime stream cache's job, not the lint's.
     */
    bool mirror = false;
    bool hasConst = false;
    uint64_t constVal = 0;
    /** Last writer node per location, for DeadWrite attribution. */
    size_t lastWriterVert = kNoNode;
    size_t lastWriterHost = kNoNode;
    /** Whether each location was read since its last write. */
    bool vertRead = false;
    bool hostRead = false;
    /** Last node that wrote ANY location (the exported fact). */
    size_t lastWriter = kNoNode;
};

Definedness
definednessOf(const ObjState &s)
{
    if (s.vert == LocState::Current && s.host == LocState::Current)
        return Definedness::Full;
    if (s.vert == LocState::Unwritten &&
        s.host == LocState::Unwritten)
        return Definedness::Unwritten;
    return Definedness::Partial;
}

AbstractLayout
layoutOf(const ObjState &s)
{
    if (s.vflag)
        return AbstractLayout::Vertical;
    if (s.host != LocState::Unwritten)
        return AbstractLayout::Horizontal;
    return AbstractLayout::Unknown;
}

const char *
locName(BbopLoc loc)
{
    return loc == BbopLoc::Vert ? "vertical" : "host";
}

/**
 * @return True iff @p in is shaped well enough for effectsOf() and
 *         the dataflow rules: known opcode and operation, width in
 *         range, and every operand id inside the object table.
 *         Instructions failing this are left to the validator, which
 *         rejects them with the precise typed message (wrapped as a
 *         Malformed diagnostic).
 */
bool
analyzable(const BbopInstr &in, size_t object_count)
{
    switch (in.opcode) {
      case BbopOpcode::Trsp:
      case BbopOpcode::TrspInv:
      case BbopOpcode::Op:
      case BbopOpcode::Init:
      case BbopOpcode::ShiftL:
      case BbopOpcode::ShiftR:
        break;
      default:
        return false;
    }
    if (in.width == 0 || in.width > 64)
        return false;
    if (in.opcode == BbopOpcode::Op &&
        static_cast<size_t>(in.op) >= kOpKindCount)
        return false;
    const BbopEffects e = effectsOf(in);
    for (size_t i = 0; i < e.numReads; ++i)
        if (e.reads[i].obj >= object_count)
            return false;
    for (size_t i = 0; i < e.numWrites; ++i)
        if (e.writes[i].obj >= object_count)
            return false;
    return true;
}

} // namespace

const char *
lintRuleId(LintRule rule)
{
    switch (rule) {
      case LintRule::Malformed:      return "malformed";
      case LintRule::ReadUnwritten:  return "read-unwritten";
      case LintRule::LayoutMismatch: return "layout-mismatch";
      case LintRule::DeadWrite:      return "dead-write";
      case LintRule::RedundantTrsp:  return "redundant-trsp";
      case LintRule::RedundantInit:  return "redundant-init";
      case LintRule::SelfAlias:      return "self-alias";
      case LintRule::ShiftOverflow:  return "shift-overflow";
    }
    return "unknown";
}

size_t
AnalysisResult::errorCount() const
{
    size_t n = 0;
    for (const auto &d : diagnostics)
        if (d.severity == LintSeverity::Error)
            ++n;
    return n;
}

size_t
AnalysisResult::count(LintRule rule) const
{
    size_t n = 0;
    for (const auto &d : diagnostics)
        if (d.rule == rule)
            ++n;
    return n;
}

AnalysisResult
analyzeStream(const StreamIR &ir, const BbopObjectView &view,
              const AnalyzerOptions &opts)
{
    const size_t n_obj = view.objectCount();
    std::vector<ObjState> st(n_obj);
    for (size_t i = 0; i < n_obj; ++i) {
        const BbopObjectShape sh =
            view.shape(static_cast<uint16_t>(i));
        st[i].vflag = sh.vertical;
        if (opts.entry == EntryAssumption::FromView) {
            // The executor zero-fills every host image at
            // defineObject() and keeps it live across submissions, so
            // the host location always holds data; the vertical image
            // is current iff the table says the object is vertical.
            st[i].host = LocState::Current;
            st[i].vert = sh.vertical ? LocState::Current
                                     : LocState::Unwritten;
        }
    }

    AnalysisResult res;
    res.nodeReads.resize(ir.nodes.size());
    // Writes of each node not yet proven overwritten-before-read;
    // when a node's count hits zero it is a dead write.
    std::vector<size_t> pending(ir.nodes.size(), 0);

    BbopValidator validator(view);

    for (size_t n = 0; n < ir.nodes.size(); ++n) {
        if (ir.nodes[n].dead)
            continue; // will not execute; transparent to the facts
        const BbopInstr &in = ir.nodes[n].instr;

        bool node_error = false;
        auto emit = [&](LintRule rule, LintSeverity sev, size_t node,
                        uint16_t obj, const std::string &msg) {
            res.diagnostics.push_back(StreamDiagnostic{
                rule, sev, node, obj,
                std::string(lintRuleId(rule)) + ": " + msg});
            if (sev == LintSeverity::Error && node == n)
                node_error = true;
        };

        const bool ok = analyzable(in, n_obj);
        BbopEffects eff{};
        if (ok) {
            eff = effectsOf(in);

            // Self-aliasing src/dst hazard: in-place bbop execution
            // does not exist, so an operand that is also the
            // destination reads data the instruction is concurrently
            // overwriting.
            if (in.opcode == BbopOpcode::Op ||
                in.opcode == BbopOpcode::ShiftL ||
                in.opcode == BbopOpcode::ShiftR) {
                for (size_t i = 0; i < eff.numReads; ++i) {
                    if (eff.reads[i].obj != in.dst)
                        continue;
                    emit(LintRule::SelfAlias, LintSeverity::Error, n,
                         in.dst,
                         toAsm(in) + " destination d" +
                             std::to_string(in.dst) +
                             " aliases a source operand (node " +
                             std::to_string(n) + ")");
                    break;
                }
            }

            // Shift amount >= element width always produces zero —
            // legal to the validator, almost certainly a bug. This is
            // the one rule that is strictly NEW over the ISA checks.
            if ((in.opcode == BbopOpcode::ShiftL ||
                 in.opcode == BbopOpcode::ShiftR) &&
                in.sel >= in.width) {
                emit(LintRule::ShiftOverflow, LintSeverity::Error, n,
                     in.dst,
                     toAsm(in) + " shift amount " +
                         std::to_string(in.sel) +
                         " >= element width " +
                         std::to_string(in.width) +
                         " zeroes the destination (node " +
                         std::to_string(n) + ")");
            }

            // Redundant trsp/trsp_inv/init: fire exactly when the
            // hoisting pass would have elided the instruction.
            if ((in.opcode == BbopOpcode::Trsp ||
                 in.opcode == BbopOpcode::TrspInv) &&
                st[in.dst].mirror) {
                emit(LintRule::RedundantTrsp, LintSeverity::Warning,
                     n, in.dst,
                     toAsm(in) +
                         " images already coincide; the hoisting "
                         "pass should have elided this (node " +
                         std::to_string(n) + ")");
            }
            if (in.opcode == BbopOpcode::Init) {
                const ObjState &s = st[in.dst];
                if (s.mirror && s.hasConst &&
                    s.constVal == in.initImmediate()) {
                    emit(LintRule::RedundantInit,
                         LintSeverity::Warning, n, in.dst,
                         toAsm(in) + " rebroadcasts constant " +
                             std::to_string(in.initImmediate()) +
                             " already in place (node " +
                             std::to_string(n) + ")");
                }
            }

            // Read rules + the per-read facts translation validation
            // compares across passes.
            for (size_t i = 0; i < eff.numReads; ++i) {
                const BbopAccess &r = eff.reads[i];
                const ObjState &s = st[r.obj];
                const LocState ls =
                    r.loc == BbopLoc::Vert ? s.vert : s.host;
                if (ls != LocState::Current) {
                    if (s.vert == LocState::Unwritten &&
                        s.host == LocState::Unwritten) {
                        emit(LintRule::ReadUnwritten,
                             LintSeverity::Error, n, r.obj,
                             toAsm(in) + " reads d" +
                                 std::to_string(r.obj) +
                                 ", which nothing ever wrote "
                                 "(node " +
                                 std::to_string(n) + ")");
                    } else {
                        emit(LintRule::LayoutMismatch,
                             LintSeverity::Error, n, r.obj,
                             toAsm(in) + " reads the " +
                                 locName(r.loc) + " image of d" +
                                 std::to_string(r.obj) +
                                 ", which is " +
                                 (ls == LocState::Unwritten
                                      ? "absent"
                                      : "stale") +
                                 " — the current value lives in "
                                 "the other layout (node " +
                                 std::to_string(n) + ")");
                    }
                }
                res.nodeReads[n].push_back(
                    ReadFact{r.obj, r.loc,
                             ls == LocState::Unwritten
                                 ? LocDefinedness::Absent
                                 : (ls == LocState::Stale
                                        ? LocDefinedness::Stale
                                        : LocDefinedness::Current),
                             layoutOf(s), s.hasConst,
                             s.hasConst ? s.constVal : 0});
            }
        }

        // The shared validator is the single source of truth for ISA
        // malformedness: run it alongside (its layout scratch evolves
        // with the program) and wrap rejections. A node a specific
        // rule already flagged as an Error keeps that attribution.
        bool accepted = true;
        try {
            validator.check(in);
        } catch (const BbopError &e) {
            accepted = false;
            if (!node_error)
                emit(LintRule::Malformed, LintSeverity::Error, n,
                     in.dst, std::string(e.what()) + " (node " +
                                 std::to_string(n) + ")");
        }
        if (!ok || !accepted)
            continue; // optimistic: skip the transfer, keep walking

        // ---- Transfer function ----

        for (size_t i = 0; i < eff.numReads; ++i) {
            ObjState &s = st[eff.reads[i].obj];
            (eff.reads[i].loc == BbopLoc::Vert ? s.vertRead
                                               : s.hostRead) = true;
        }

        // Dead-write detection, with the DWE pass's exact liveness
        // rule: a node is dead once EVERY location it wrote is
        // overwritten before any read (end-of-program keeps both
        // locations live-out, so un-overwritten writes never die).
        for (size_t i = 0; i < eff.numWrites; ++i) {
            const BbopAccess &w = eff.writes[i];
            ObjState &s = st[w.obj];
            size_t &last = w.loc == BbopLoc::Vert ? s.lastWriterVert
                                                  : s.lastWriterHost;
            bool &read = w.loc == BbopLoc::Vert ? s.vertRead
                                                : s.hostRead;
            if (last != kNoNode && !read && pending[last] > 0 &&
                --pending[last] == 0) {
                emit(LintRule::DeadWrite, LintSeverity::Warning,
                     last, w.obj,
                     toAsm(ir.nodes[last].instr) +
                         " is overwritten before any read (by "
                         "node " +
                         std::to_string(n) + ") (node " +
                         std::to_string(last) + ")");
            }
            last = n;
            read = false;
            s.lastWriter = n;
        }
        pending[n] = eff.numWrites;

        // Per-opcode abstract state. Every bbop write covers the full
        // location, and the transposition opcodes SYNC the two
        // images, so after them both locations hold the (new) current
        // value — even when the source image was stale: the copy
        // makes that stale data the object's value.
        switch (in.opcode) {
          case BbopOpcode::Trsp: {
            ObjState &s = st[in.dst];
            s.vert = LocState::Current;
            s.host = LocState::Current;
            s.mirror = true; // hasConst unchanged, as in hoistPass
            s.vflag = true;
            break;
          }
          case BbopOpcode::TrspInv: {
            ObjState &s = st[in.dst];
            s.vert = LocState::Current;
            s.host = LocState::Current;
            // Clear const-ness only when the images did NOT already
            // coincide (the hoistPass rule): a redundant trsp_inv is
            // an identity and must not perturb the facts, or the
            // hoisting pass would (falsely) fail translation
            // validation by removing it.
            if (!s.mirror) {
                s.mirror = true;
                s.hasConst = false;
            }
            break;
          }
          case BbopOpcode::Init: {
            ObjState &s = st[in.dst];
            s.vert = LocState::Current;
            s.host = LocState::Current;
            s.mirror = true;
            s.hasConst = true;
            s.constVal = in.initImmediate();
            s.vflag = true;
            break;
          }
          case BbopOpcode::Op:
          case BbopOpcode::ShiftL:
          case BbopOpcode::ShiftR: {
            ObjState &s = st[in.dst];
            s.vert = LocState::Current;
            if (s.host == LocState::Current)
                s.host = LocState::Stale;
            s.mirror = false;
            s.hasConst = false;
            s.vflag = true;
            break;
          }
        }
    }

    res.exitState.resize(n_obj);
    for (size_t i = 0; i < n_obj; ++i) {
        const ObjState &s = st[i];
        res.exitState[i] = AbstractObjectState{
            definednessOf(s), layoutOf(s), s.hasConst,
            s.hasConst ? s.constVal : 0, s.lastWriter};
    }
    return res;
}

namespace
{

/** Compares pre/post analyses of one pass; appends any violations. */
void
comparePass(const char *pass, const StreamIR &ir,
            const std::vector<bool> &pre_dead,
            const AnalysisResult &pre, const AnalysisResult &post,
            std::vector<PassValidationFailure> &failures)
{
    for (size_t n = 0; n < ir.nodes.size(); ++n) {
        if (ir.nodes[n].dead)
            continue;
        if (pre_dead[n]) {
            failures.push_back(PassValidationFailure{
                pass, n,
                std::string(pass) + " resurrected dead node " +
                    std::to_string(n)});
            continue;
        }
        if (pre.nodeReads[n] != post.nodeReads[n])
            failures.push_back(PassValidationFailure{
                pass, n,
                std::string(pass) +
                    " changed the state observed by node " +
                    std::to_string(n) + " (" +
                    toAsm(ir.nodes[n].instr) + ")"});
    }
    for (size_t i = 0; i < pre.exitState.size(); ++i) {
        if (!(pre.exitState[i].def == post.exitState[i].def &&
              pre.exitState[i].layout == post.exitState[i].layout &&
              pre.exitState[i].isConst ==
                  post.exitState[i].isConst &&
              pre.exitState[i].constVal ==
                  post.exitState[i].constVal)) {
            failures.push_back(PassValidationFailure{
                pass, kNoNode,
                std::string(pass) +
                    " changed the exit state of object d" +
                    std::to_string(i)});
        }
    }
}

std::vector<bool>
deadBits(const StreamIR &ir)
{
    std::vector<bool> dead(ir.nodes.size());
    for (size_t n = 0; n < ir.nodes.size(); ++n)
        dead[n] = ir.nodes[n].dead;
    return dead;
}

} // namespace

TranslationValidation
runPassesValidated(StreamIR &ir, const PassOptions &opts,
                   const BbopObjectView &view,
                   const AnalyzerOptions &aopts)
{
    TranslationValidation tv;

    // Single-pass configurations, in runPasses's fixed order. Running
    // them one runPasses() call each is equivalent to one combined
    // call: the passes communicate only through the dead bits and
    // segment ids of the shared IR.
    struct Stage
    {
        const char *name;
        bool enabled;
        PassOptions only;
    };
    const Stage stages[] = {
        {"trsp-hoist", opts.trspHoist, {true, false, false}},
        {"dead-write-elim", opts.deadWriteElim,
         {false, true, false}},
        {"fusion", opts.fusion, {false, false, true}},
    };

    AnalysisResult pre = analyzeStream(ir, view, aopts);
    for (const Stage &stage : stages) {
        if (!stage.enabled)
            continue;
        const std::vector<bool> pre_dead = deadBits(ir);
        const PassStats s = runPasses(ir, stage.only);
        tv.stats.hoisted += s.hoisted;
        tv.stats.deadEliminated += s.deadEliminated;
        tv.stats.fusedSegments += s.fusedSegments;

        AnalysisResult post = analyzeStream(ir, view, aopts);
        // Fact preservation is only claimed for programs that are
        // themselves coherent: with Error-level findings (reads of
        // stale or unwritten data), the abstract facts describe the
        // BUG, and removing a dead write can legitimately change
        // them without changing a single byte of memory. Such
        // programs are the lint rules' job, not the passes'.
        if (pre.errorCount() == 0)
            comparePass(stage.name, ir, pre_dead, pre, post,
                        tv.failures);
        pre = std::move(post);
    }
    return tv;
}

} // namespace simdram
