/**
 * @file
 * The 16 example operations the SIMDRAM paper demonstrates.
 *
 * Categories (paper section 5): N-input logic operations (and_red,
 * or_red, xor_red), relational operations (eq, gt, ge, max, min),
 * arithmetic (add, sub, mul, div, abs), predication (if_else), and
 * other complex operations (bitcount, relu).
 *
 * Semantics (all element widths w in {8,16,32,64}, values masked to w
 * bits):
 *  - abs, relu interpret the operand as two's-complement signed;
 *  - eq/gt/ge/max/min are unsigned comparisons;
 *  - mul returns the low w bits of the product;
 *  - div is unsigned; division by zero returns the all-ones value
 *    (the natural result of the in-DRAM restoring divider);
 *  - and_red/or_red/xor_red reduce the w bits of the operand to 1 bit;
 *  - bitcount returns the population count (ceil(log2(w+1)) bits);
 *  - if_else selects a (sel=1) or b (sel=0) per lane.
 */

#ifndef SIMDRAM_OPS_OP_KIND_H
#define SIMDRAM_OPS_OP_KIND_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace simdram
{

/** The operations shipped with the framework. */
enum class OpKind : uint8_t
{
    Abs,
    Add,
    AndRed,
    Bitcount,
    Div,
    Eq,
    Ge,
    Gt,
    IfElse,
    Max,
    Min,
    Mul,
    OrRed,
    Relu,
    Sub,
    XorRed,
    // ---- Extension operations beyond the paper's example set ----
    // (the paper: "The SIMDRAM framework is not limited to these
    // operations"). Bulk 2-input bitwise logic, Ambit's native ops,
    // generalized to any element width:
    BitAnd,
    BitOr,
    BitXor,
};

/**
 * Number of OpKind enumerators (paper set + extensions). Enumerator
 * values are contiguous from 0, so a decoded operation field is valid
 * iff it is below this count.
 */
constexpr size_t kOpKindCount =
    static_cast<size_t>(OpKind::BitXor) + 1;

/** The paper's 16 example operations, in a stable order. */
constexpr std::array<OpKind, 16> kAllOps = {
    OpKind::Abs,    OpKind::Add, OpKind::AndRed, OpKind::Bitcount,
    OpKind::Div,    OpKind::Eq,  OpKind::Ge,     OpKind::Gt,
    OpKind::IfElse, OpKind::Max, OpKind::Min,    OpKind::Mul,
    OpKind::OrRed,  OpKind::Relu, OpKind::Sub,   OpKind::XorRed,
};

/** Extension operations shipped beyond the paper's set. */
constexpr std::array<OpKind, 3> kExtensionOps = {
    OpKind::BitAnd,
    OpKind::BitOr,
    OpKind::BitXor,
};

/** @return The operation's lowercase name (e.g. "bitcount"). */
std::string toString(OpKind op);

/** Interface shape of an operation at a given element width. */
struct OpSignature
{
    size_t numInputs = 2;  ///< Number of w-bit input buses (1 or 2).
    bool hasSel = false;   ///< True if a 1-bit select bus exists.
    size_t outWidth = 0;   ///< Output bus width in bits.
};

/** @return The signature of @p op at element width @p width. */
OpSignature signatureOf(OpKind op, size_t width);

/**
 * Golden scalar reference for @p op.
 *
 * @param op Operation.
 * @param width Element width; inputs are masked to it.
 * @param a First operand.
 * @param b Second operand (ignored by unary operations).
 * @param sel Predicate bit (if_else only).
 * @return The result, masked to the operation's output width.
 */
uint64_t referenceOp(OpKind op, size_t width, uint64_t a, uint64_t b,
                     bool sel = false);

} // namespace simdram

#endif // SIMDRAM_OPS_OP_KIND_H
