/**
 * @file
 * Word-level circuit construction in two gate styles.
 *
 * WordGates is the bridge between an operation's algorithm (ripple
 * adder, restoring divider, comparator, ...) and the two substrate
 * node sets:
 *
 *  - GateStyle::Aoig emits AND/OR/NOT gates — the building blocks
 *    Ambit natively executes (the baseline);
 *  - GateStyle::Mig emits majority/NOT gates directly, using the
 *    efficient known MAJ decompositions (e.g. a full adder is three
 *    majority gates) — the SIMDRAM substrate.
 *
 * The same algorithm code produces both variants, which is exactly the
 * comparison the paper makes: the MAJ/NOT node set needs fewer DRAM
 * commands for the same computation.
 */

#ifndef SIMDRAM_OPS_WORDGATES_H
#define SIMDRAM_OPS_WORDGATES_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "logic/circuit.h"

namespace simdram
{

/** Which gate family WordGates emits. */
enum class GateStyle : uint8_t
{
    Aoig, ///< AND/OR/NOT (Ambit baseline).
    Mig,  ///< Majority/NOT (SIMDRAM).
};

/** @return "aoig" or "mig". */
const char *toString(GateStyle s);

/** Word-level gate builder over a Circuit. */
class WordGates
{
  public:
    /** A little-endian bundle of literals (bit 0 first). */
    using Bus = std::vector<Lit>;

    /** Sum and carry of an adder stage. */
    struct AddResult
    {
        Bus sum;   ///< Sum bits.
        Lit carry; ///< Carry/borrow-free flag out of the top bit.
    };

    /** Unsigned comparison flags. */
    struct CmpResult
    {
        Lit gt; ///< a > b.
        Lit eq; ///< a == b.
    };

    /**
     * @param c Circuit being built (must outlive this object).
     * @param style Gate family to emit.
     */
    WordGates(Circuit &c, GateStyle style) : c_(c), style_(style) {}

    // ---- Bit-level gates ----------------------------------------------

    /** @return NOT a (free: complemented edge). */
    static Lit lnot(Lit a) { return Circuit::litNot(a); }

    /** @return a AND b in the current style. */
    Lit land(Lit a, Lit b);

    /** @return a OR b in the current style. */
    Lit lor(Lit a, Lit b);

    /** @return a XOR b in the current style. */
    Lit lxor(Lit a, Lit b);

    /** @return s ? t : f in the current style. */
    Lit mux(Lit s, Lit t, Lit f);

    /** @return Full-adder {sum, carry} of three bits. */
    AddResult fullAdder(Lit a, Lit b, Lit cin);

    // ---- Word-level helpers --------------------------------------------

    /** @return A bus holding constant @p value over @p width bits. */
    Bus constant(uint64_t value, size_t width) const;

    /** @return Bitwise NOT of a bus. */
    static Bus notBus(const Bus &a);

    /** @return Ripple-carry a + b + cin (buses must match widths). */
    AddResult add(const Bus &a, const Bus &b,
                  Lit cin = Circuit::kLit0);

    /**
     * @return a - b via a + ~b + 1. carry==1 means no borrow
     *         (i.e. a >= b unsigned).
     */
    AddResult sub(const Bus &a, const Bus &b);

    /** @return Two's-complement negation of @p a. */
    Bus negate(const Bus &a);

    /** @return Per-bit multiplex: s ? t : f. */
    Bus muxBus(Lit s, const Bus &t, const Bus &f);

    /** @return Unsigned comparison of two buses. */
    CmpResult compareUnsigned(const Bus &a, const Bus &b);

    /** @return Signed (two's-complement) comparison. */
    CmpResult compareSigned(const Bus &a, const Bus &b);

    /** @return Low-width(a) bits of a * b (schoolbook). */
    Bus mulLow(const Bus &a, const Bus &b);

    /**
     * @return Unsigned quotient of a / b (restoring division).
     *         Division by zero yields the all-ones bus.
     */
    Bus divUnsigned(const Bus &a, const Bus &b);

    /** @return Population count of @p a, ceil(log2(w+1)) bits wide. */
    Bus popcount(const Bus &a);

    /** @return AND-reduction of all bits of @p a. */
    Lit reduceAnd(const Bus &a);

    /** @return OR-reduction of all bits of @p a. */
    Lit reduceOr(const Bus &a);

    /** @return XOR-reduction (parity) of all bits of @p a. */
    Lit reduceXor(const Bus &a);

  private:
    Circuit &c_;
    GateStyle style_;
};

} // namespace simdram

#endif // SIMDRAM_OPS_WORDGATES_H
