#include "common/error.h"
#include "ops/builders.h"

namespace simdram
{
namespace detail
{

Circuit
buildRelational(OpKind op, size_t width, GateStyle style)
{
    Circuit c;
    WordGates g(c, style);
    const auto a = c.addInputBus("a", width);
    const auto b = c.addInputBus("b", width);

    switch (op) {
      case OpKind::Eq: {
        const auto cmp = g.compareUnsigned(a, b);
        c.addOutputBus("y", {cmp.eq});
        break;
      }
      case OpKind::Gt: {
        const auto cmp = g.compareUnsigned(a, b);
        c.addOutputBus("y", {cmp.gt});
        break;
      }
      case OpKind::Ge: {
        const auto cmp = g.compareUnsigned(a, b);
        c.addOutputBus("y", {g.lor(cmp.gt, cmp.eq)});
        break;
      }
      case OpKind::Max: {
        const auto cmp = g.compareUnsigned(a, b);
        c.addOutputBus("y", g.muxBus(cmp.gt, a, b));
        break;
      }
      case OpKind::Min: {
        const auto cmp = g.compareUnsigned(a, b);
        c.addOutputBus("y", g.muxBus(cmp.gt, b, a));
        break;
      }
      default:
        panic("buildRelational: not a relational op");
    }
    return c;
}

} // namespace detail
} // namespace simdram
