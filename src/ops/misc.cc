#include "common/error.h"
#include "ops/builders.h"

namespace simdram
{
namespace detail
{

Circuit
buildMisc(OpKind op, size_t width, GateStyle style)
{
    Circuit c;
    WordGates g(c, style);

    switch (op) {
      case OpKind::IfElse: {
        const auto a = c.addInputBus("a", width);
        const auto b = c.addInputBus("b", width);
        const auto sel = c.addInputBus("sel", 1);
        c.addOutputBus("y", g.muxBus(sel[0], a, b));
        break;
      }
      case OpKind::Relu: {
        const auto a = c.addInputBus("a", width);
        const Lit sign = a.back();
        WordGates::Bus y(width);
        for (size_t j = 0; j < width; ++j)
            y[j] = g.land(WordGates::lnot(sign), a[j]);
        c.addOutputBus("y", y);
        break;
      }
      case OpKind::BitAnd:
      case OpKind::BitOr:
      case OpKind::BitXor: {
        const auto a = c.addInputBus("a", width);
        const auto b = c.addInputBus("b", width);
        WordGates::Bus y(width);
        for (size_t j = 0; j < width; ++j) {
            if (op == OpKind::BitAnd)
                y[j] = g.land(a[j], b[j]);
            else if (op == OpKind::BitOr)
                y[j] = g.lor(a[j], b[j]);
            else
                y[j] = g.lxor(a[j], b[j]);
        }
        c.addOutputBus("y", y);
        break;
      }
      default:
        panic("buildMisc: not a misc op");
    }
    return c;
}

} // namespace detail
} // namespace simdram
