#include "common/error.h"
#include "ops/builders.h"

namespace simdram
{
namespace detail
{

Circuit
buildArith(OpKind op, size_t width, GateStyle style)
{
    Circuit c;
    WordGates g(c, style);

    switch (op) {
      case OpKind::Abs: {
        const auto a = c.addInputBus("a", width);
        const Lit sign = a.back();
        const auto neg = g.negate(a);
        c.addOutputBus("y", g.muxBus(sign, neg, a));
        break;
      }
      case OpKind::Add: {
        const auto a = c.addInputBus("a", width);
        const auto b = c.addInputBus("b", width);
        c.addOutputBus("y", g.add(a, b).sum);
        break;
      }
      case OpKind::Sub: {
        const auto a = c.addInputBus("a", width);
        const auto b = c.addInputBus("b", width);
        c.addOutputBus("y", g.sub(a, b).sum);
        break;
      }
      case OpKind::Mul: {
        const auto a = c.addInputBus("a", width);
        const auto b = c.addInputBus("b", width);
        c.addOutputBus("y", g.mulLow(a, b));
        break;
      }
      case OpKind::Div: {
        const auto a = c.addInputBus("a", width);
        const auto b = c.addInputBus("b", width);
        c.addOutputBus("y", g.divUnsigned(a, b));
        break;
      }
      default:
        panic("buildArith: not an arithmetic op");
    }
    return c;
}

} // namespace detail
} // namespace simdram
