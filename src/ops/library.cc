#include "ops/library.h"

#include <bit>

#include "common/error.h"
#include "logic/mig.h"
#include "logic/optimizer.h"
#include "ops/builders.h"

namespace simdram
{

std::string
toString(OpKind op)
{
    switch (op) {
      case OpKind::Abs: return "abs";
      case OpKind::Add: return "add";
      case OpKind::AndRed: return "and_red";
      case OpKind::Bitcount: return "bitcount";
      case OpKind::Div: return "div";
      case OpKind::Eq: return "eq";
      case OpKind::Ge: return "ge";
      case OpKind::Gt: return "gt";
      case OpKind::IfElse: return "if_else";
      case OpKind::Max: return "max";
      case OpKind::Min: return "min";
      case OpKind::Mul: return "mul";
      case OpKind::OrRed: return "or_red";
      case OpKind::Relu: return "relu";
      case OpKind::Sub: return "sub";
      case OpKind::XorRed: return "xor_red";
      case OpKind::BitAnd: return "bit_and";
      case OpKind::BitOr: return "bit_or";
      case OpKind::BitXor: return "bit_xor";
    }
    return "?";
}

OpSignature
signatureOf(OpKind op, size_t width)
{
    switch (op) {
      case OpKind::Abs:
      case OpKind::Relu:
        return {1, false, width};
      case OpKind::AndRed:
      case OpKind::OrRed:
      case OpKind::XorRed:
        return {1, false, 1};
      case OpKind::Bitcount: {
        size_t out_w = 1;
        while ((size_t{1} << out_w) < width + 1)
            ++out_w;
        return {1, false, out_w};
      }
      case OpKind::Eq:
      case OpKind::Ge:
      case OpKind::Gt:
        return {2, false, 1};
      case OpKind::IfElse:
        return {2, true, width};
      default: // add/sub/mul/div/max/min/bit_and/bit_or/bit_xor
        return {2, false, width};
    }
}

uint64_t
referenceOp(OpKind op, size_t width, uint64_t a, uint64_t b, bool sel)
{
    const uint64_t mask =
        width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    a &= mask;
    b &= mask;
    const uint64_t sign_bit = 1ULL << (width - 1);

    switch (op) {
      case OpKind::Abs:
        return (a & sign_bit) ? ((~a + 1) & mask) : a;
      case OpKind::Add:
        return (a + b) & mask;
      case OpKind::AndRed:
        return a == mask ? 1 : 0;
      case OpKind::Bitcount:
        return static_cast<uint64_t>(std::popcount(a));
      case OpKind::Div:
        return b == 0 ? mask : (a / b);
      case OpKind::Eq:
        return a == b ? 1 : 0;
      case OpKind::Ge:
        return a >= b ? 1 : 0;
      case OpKind::Gt:
        return a > b ? 1 : 0;
      case OpKind::IfElse:
        return sel ? a : b;
      case OpKind::Max:
        return a > b ? a : b;
      case OpKind::Min:
        return a > b ? b : a;
      case OpKind::Mul:
        return (a * b) & mask;
      case OpKind::OrRed:
        return a != 0 ? 1 : 0;
      case OpKind::Relu:
        return (a & sign_bit) ? 0 : a;
      case OpKind::Sub:
        return (a - b) & mask;
      case OpKind::XorRed:
        return static_cast<uint64_t>(std::popcount(a)) & 1;
      case OpKind::BitAnd:
        return a & b;
      case OpKind::BitOr:
        return a | b;
      case OpKind::BitXor:
        return a ^ b;
    }
    panic("referenceOp: bad op");
}

Circuit
buildOpCircuit(OpKind op, size_t width, GateStyle style)
{
    if (width < 1 || width > 64)
        fatal("buildOpCircuit: width must be in [1, 64]");
    if ((op == OpKind::Abs || op == OpKind::Relu) && width < 2)
        fatal("buildOpCircuit: signed operations need width >= 2");
    switch (op) {
      case OpKind::Abs:
      case OpKind::Add:
      case OpKind::Sub:
      case OpKind::Mul:
      case OpKind::Div:
        return detail::buildArith(op, width, style);
      case OpKind::Eq:
      case OpKind::Gt:
      case OpKind::Ge:
      case OpKind::Max:
      case OpKind::Min:
        return detail::buildRelational(op, width, style);
      case OpKind::AndRed:
      case OpKind::OrRed:
      case OpKind::XorRed:
      case OpKind::Bitcount:
        return detail::buildReduction(op, width, style);
      case OpKind::IfElse:
      case OpKind::Relu:
      case OpKind::BitAnd:
      case OpKind::BitOr:
      case OpKind::BitXor:
        return detail::buildMisc(op, width, style);
    }
    panic("buildOpCircuit: bad op");
}

const Circuit &
OperationLibrary::aoig(OpKind op, size_t width)
{
    return get(op, width, Variant::Aoig);
}

const Circuit &
OperationLibrary::migNaive(OpKind op, size_t width)
{
    return get(op, width, Variant::MigNaive);
}

const Circuit &
OperationLibrary::migSynth(OpKind op, size_t width)
{
    return get(op, width, Variant::MigSynth);
}

const Circuit &
OperationLibrary::mig(OpKind op, size_t width)
{
    return get(op, width, Variant::Mig);
}

const Circuit &
OperationLibrary::get(OpKind op, size_t width, Variant v)
{
    const auto key = std::make_tuple(op, width,
                                     static_cast<uint8_t>(v));
    auto it = cache_.find(key);
    if (it != cache_.end())
        return *it->second;

    Circuit built;
    switch (v) {
      case Variant::Aoig:
        built = buildOpCircuit(op, width, GateStyle::Aoig);
        break;
      case Variant::MigNaive:
        built = toMig(aoig(op, width));
        break;
      case Variant::MigSynth:
        built = optimizeMig(migNaive(op, width));
        break;
      case Variant::Mig: {
        // Production variant: take the better of the expert MAJ/NOT
        // construction and the optimized mechanical lowering — the
        // framework's step 1 keeps whichever implementation needs
        // fewer majority gates.
        Circuit expert = optimizeMig(
            toMig(buildOpCircuit(op, width, GateStyle::Mig)));
        const Circuit &synth = migSynth(op, width);
        if (synth.topoOrder().size() < expert.topoOrder().size())
            built = synth;
        else
            built = std::move(expert);
        break;
      }
    }
    auto owned = std::make_unique<Circuit>(std::move(built));
    const Circuit &ref = *owned;
    cache_.emplace(key, std::move(owned));
    return ref;
}

} // namespace simdram
