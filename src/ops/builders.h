/**
 * @file
 * Internal per-category circuit builders (see library.h for the
 * public entry point buildOpCircuit()).
 *
 * Every builder creates a fresh circuit with input buses "a" (and "b",
 * "sel" per the signature) and a single output bus "y".
 */

#ifndef SIMDRAM_OPS_BUILDERS_H
#define SIMDRAM_OPS_BUILDERS_H

#include <cstddef>

#include "logic/circuit.h"
#include "ops/op_kind.h"
#include "ops/wordgates.h"

namespace simdram
{
namespace detail
{

/** Builds abs/add/sub/mul/div. */
Circuit buildArith(OpKind op, size_t width, GateStyle style);

/** Builds eq/gt/ge/max/min. */
Circuit buildRelational(OpKind op, size_t width, GateStyle style);

/** Builds and_red/or_red/xor_red/bitcount. */
Circuit buildReduction(OpKind op, size_t width, GateStyle style);

/** Builds if_else/relu. */
Circuit buildMisc(OpKind op, size_t width, GateStyle style);

} // namespace detail
} // namespace simdram

#endif // SIMDRAM_OPS_BUILDERS_H
