#include "ops/wordgates.h"

#include "common/error.h"

namespace simdram
{

const char *
toString(GateStyle s)
{
    return s == GateStyle::Aoig ? "aoig" : "mig";
}

Lit
WordGates::land(Lit a, Lit b)
{
    if (style_ == GateStyle::Mig)
        return c_.mkMaj(a, b, Circuit::kLit0);
    return c_.mkAnd(a, b);
}

Lit
WordGates::lor(Lit a, Lit b)
{
    if (style_ == GateStyle::Mig)
        return c_.mkMaj(a, b, Circuit::kLit1);
    return c_.mkOr(a, b);
}

Lit
WordGates::lxor(Lit a, Lit b)
{
    if (style_ == GateStyle::Mig) {
        // XOR(a,b) = AND(NAND(a,b), OR(a,b)) in majority form; the
        // two inner nodes hash-share with neighboring arithmetic.
        const Lit nand_ab = lnot(land(a, b));
        const Lit or_ab = lor(a, b);
        return land(nand_ab, or_ab);
    }
    return c_.mkOr(c_.mkAnd(a, lnot(b)), c_.mkAnd(lnot(a), b));
}

Lit
WordGates::mux(Lit s, Lit t, Lit f)
{
    // s?t:f = OR(AND(s,t), AND(!s,f)) in both styles.
    return lor(land(s, t), land(lnot(s), f));
}

WordGates::AddResult
WordGates::fullAdder(Lit a, Lit b, Lit cin)
{
    if (style_ == GateStyle::Mig) {
        // The classic 3-majority full adder (paper Fig. 1):
        //   carry = M(a, b, cin)
        //   sum   = M(!carry, M(a, b, !cin), cin)
        const Lit carry = c_.mkMaj(a, b, cin);
        const Lit inner = c_.mkMaj(a, b, lnot(cin));
        const Lit sum = c_.mkMaj(lnot(carry), inner, cin);
        return {{sum}, carry};
    }
    const Lit x = lxor(a, b);
    const Lit sum = lxor(x, cin);
    const Lit carry = lor(land(a, b), land(x, cin));
    return {{sum}, carry};
}

WordGates::Bus
WordGates::constant(uint64_t value, size_t width) const
{
    Bus bus(width, Circuit::kLit0);
    for (size_t j = 0; j < width && j < 64; ++j)
        if ((value >> j) & 1)
            bus[j] = Circuit::kLit1;
    return bus;
}

WordGates::Bus
WordGates::notBus(const Bus &a)
{
    Bus r(a.size());
    for (size_t j = 0; j < a.size(); ++j)
        r[j] = lnot(a[j]);
    return r;
}

WordGates::AddResult
WordGates::add(const Bus &a, const Bus &b, Lit cin)
{
    if (a.size() != b.size())
        fatal("WordGates::add: width mismatch");
    Bus sum(a.size());
    Lit carry = cin;
    for (size_t j = 0; j < a.size(); ++j) {
        AddResult fa = fullAdder(a[j], b[j], carry);
        sum[j] = fa.sum[0];
        carry = fa.carry;
    }
    return {sum, carry};
}

WordGates::AddResult
WordGates::sub(const Bus &a, const Bus &b)
{
    return add(a, notBus(b), Circuit::kLit1);
}

WordGates::Bus
WordGates::negate(const Bus &a)
{
    return add(notBus(a), constant(0, a.size()), Circuit::kLit1).sum;
}

WordGates::Bus
WordGates::muxBus(Lit s, const Bus &t, const Bus &f)
{
    if (t.size() != f.size())
        fatal("WordGates::muxBus: width mismatch");
    Bus r(t.size());
    for (size_t j = 0; j < t.size(); ++j)
        r[j] = mux(s, t[j], f[j]);
    return r;
}

WordGates::CmpResult
WordGates::compareUnsigned(const Bus &a, const Bus &b)
{
    if (a.size() != b.size())
        fatal("WordGates::compareUnsigned: width mismatch");
    // Walk from the MSB down:
    //   gt' = gt | (eq & a_i & !b_i)
    //   eq' = eq & XNOR(a_i, b_i)
    Lit gt = Circuit::kLit0;
    Lit eq = Circuit::kLit1;
    for (size_t j = a.size(); j-- > 0;) {
        const Lit a_gt_b = land(a[j], lnot(b[j]));
        gt = lor(gt, land(eq, a_gt_b));
        eq = land(eq, lnot(lxor(a[j], b[j])));
    }
    return {gt, eq};
}

WordGates::CmpResult
WordGates::compareSigned(const Bus &a, const Bus &b)
{
    // Flip the sign bits and compare unsigned.
    Bus a2 = a, b2 = b;
    a2.back() = lnot(a2.back());
    b2.back() = lnot(b2.back());
    return compareUnsigned(a2, b2);
}

WordGates::Bus
WordGates::mulLow(const Bus &a, const Bus &b)
{
    if (a.size() != b.size())
        fatal("WordGates::mulLow: width mismatch");
    const size_t w = a.size();

    // acc = a * b_0
    Bus acc(w);
    for (size_t i = 0; i < w; ++i)
        acc[i] = land(a[i], b[0]);

    // For each further multiplier bit, add the masked, shifted
    // multiplicand into the surviving high part of the accumulator.
    for (size_t j = 1; j < w; ++j) {
        Lit carry = Circuit::kLit0;
        for (size_t i = 0; i + j < w; ++i) {
            const Lit pp = land(a[i], b[j]);
            AddResult fa = fullAdder(acc[i + j], pp, carry);
            acc[i + j] = fa.sum[0];
            carry = fa.carry;
        }
    }
    return acc;
}

WordGates::Bus
WordGates::divUnsigned(const Bus &a, const Bus &b)
{
    if (a.size() != b.size())
        fatal("WordGates::divUnsigned: width mismatch");
    const size_t w = a.size();

    // Restoring division with a (w+1)-bit remainder: after every
    // restore the remainder is < b <= 2^w - 1, so its top bit is zero
    // and shifting it left into w+1 bits never loses information.
    Bus rem = constant(0, w + 1);
    Bus bx = b;
    bx.push_back(Circuit::kLit0); // zero-extended divisor
    Bus q(w, Circuit::kLit0);
    for (size_t step = w; step-- > 0;) {
        // rem = (rem << 1) | a[step], within w+1 bits.
        Bus shifted(w + 1);
        shifted[0] = a[step];
        for (size_t i = 1; i <= w; ++i)
            shifted[i] = rem[i - 1];
        AddResult diff = sub(shifted, bx);
        q[step] = diff.carry; // no borrow => divisor fits
        rem = muxBus(diff.carry, diff.sum, shifted);
    }
    return q;
}

WordGates::Bus
WordGates::popcount(const Bus &a)
{
    size_t out_w = 1;
    while ((size_t{1} << out_w) < a.size() + 1)
        ++out_w;

    // Carry-save 3:2 reduction of the input bits down to one value
    // per weight, then a final ripple combine. Cheaper than repeated
    // increments for every width of interest.
    std::vector<std::vector<Lit>> columns(out_w);
    columns[0] = a;
    for (size_t wgt = 0; wgt < columns.size(); ++wgt) {
        auto &col = columns[wgt];
        while (col.size() > 1) {
            if (col.size() >= 3) {
                const Lit x = col.back(); col.pop_back();
                const Lit y = col.back(); col.pop_back();
                const Lit z = col.back(); col.pop_back();
                AddResult fa = fullAdder(x, y, z);
                col.push_back(fa.sum[0]);
                if (wgt + 1 < columns.size())
                    columns[wgt + 1].push_back(fa.carry);
            } else {
                const Lit x = col.back(); col.pop_back();
                const Lit y = col.back(); col.pop_back();
                AddResult ha = fullAdder(x, y, Circuit::kLit0);
                col.push_back(ha.sum[0]);
                if (wgt + 1 < columns.size())
                    columns[wgt + 1].push_back(ha.carry);
            }
        }
    }

    Bus result(out_w, Circuit::kLit0);
    for (size_t wgt = 0; wgt < out_w; ++wgt)
        if (!columns[wgt].empty())
            result[wgt] = columns[wgt][0];
    return result;
}

Lit
WordGates::reduceAnd(const Bus &a)
{
    Lit r = Circuit::kLit1;
    for (Lit l : a)
        r = land(r, l);
    return r;
}

Lit
WordGates::reduceOr(const Bus &a)
{
    Lit r = Circuit::kLit0;
    for (Lit l : a)
        r = lor(r, l);
    return r;
}

Lit
WordGates::reduceXor(const Bus &a)
{
    Lit r = Circuit::kLit0;
    for (Lit l : a)
        r = lxor(r, l);
    return r;
}

} // namespace simdram
