#include "common/error.h"
#include "ops/builders.h"

namespace simdram
{
namespace detail
{

Circuit
buildReduction(OpKind op, size_t width, GateStyle style)
{
    Circuit c;
    WordGates g(c, style);
    const auto a = c.addInputBus("a", width);

    switch (op) {
      case OpKind::AndRed:
        c.addOutputBus("y", {g.reduceAnd(a)});
        break;
      case OpKind::OrRed:
        c.addOutputBus("y", {g.reduceOr(a)});
        break;
      case OpKind::XorRed:
        c.addOutputBus("y", {g.reduceXor(a)});
        break;
      case OpKind::Bitcount:
        c.addOutputBus("y", g.popcount(a));
        break;
      default:
        panic("buildReduction: not a reduction op");
    }
    return c;
}

} // namespace detail
} // namespace simdram
