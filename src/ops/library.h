/**
 * @file
 * The operation library: the user-facing catalog of SIMDRAM
 * operations (framework step 1 entry point).
 *
 * For every (operation, width) pair the library can produce four
 * circuit variants:
 *
 *  - aoig():     the AND/OR/NOT description — what a programmer (or
 *                the Ambit baseline) starts from;
 *  - migNaive(): the mechanical MAJ/NOT lowering of the AOIG
 *                (AND -> MAJ(a,b,0), OR -> MAJ(a,b,1));
 *  - migSynth(): migNaive() after the MIG optimizer;
 *  - mig():      the expert MAJ/NOT construction (efficient known MAJ
 *                decompositions) after the MIG optimizer — what
 *                SIMDRAM executes.
 *
 * All variants of a pair are functionally equivalent (verified in the
 * test suite). Circuits are built once and cached.
 */

#ifndef SIMDRAM_OPS_LIBRARY_H
#define SIMDRAM_OPS_LIBRARY_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <tuple>

#include "logic/circuit.h"
#include "ops/op_kind.h"
#include "ops/wordgates.h"

namespace simdram
{

/**
 * Builds the circuit for @p op at @p width in gate style @p style.
 *
 * Input buses: "a" (and "b", "sel" per signatureOf()); output bus
 * "y". Not cached; prefer OperationLibrary for repeated use.
 */
Circuit buildOpCircuit(OpKind op, size_t width, GateStyle style);

/** Cached circuit variants for all operations. */
class OperationLibrary
{
  public:
    /** @return The AND/OR/NOT description. */
    const Circuit &aoig(OpKind op, size_t width);

    /** @return The unoptimized mechanical MAJ/NOT lowering. */
    const Circuit &migNaive(OpKind op, size_t width);

    /** @return The optimizer-cleaned mechanical lowering. */
    const Circuit &migSynth(OpKind op, size_t width);

    /** @return The production SIMDRAM MIG (expert + optimizer). */
    const Circuit &mig(OpKind op, size_t width);

  private:
    enum class Variant : uint8_t { Aoig, MigNaive, MigSynth, Mig };

    const Circuit &get(OpKind op, size_t width, Variant v);

    std::map<std::tuple<OpKind, size_t, uint8_t>,
             std::unique_ptr<Circuit>>
        cache_;
};

} // namespace simdram

#endif // SIMDRAM_OPS_LIBRARY_H
