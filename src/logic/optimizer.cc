#include "logic/optimizer.h"

#include <algorithm>
#include <array>

#include "common/error.h"
#include "logic/mig.h"

namespace simdram
{

namespace
{

/**
 * One distributivity-driven reconstruction pass.
 *
 * While rebuilding each MAJ node, if two of its (uncomplemented,
 * single-fanout) fanin gates share two fanin literals, apply
 * M(M(x,y,u), M(x,y,v), z) -> M(x, y, M(u,v,z)). The displaced
 * children become dead and are removed by the enclosing sweep.
 */
Circuit
distributivityPass(const Circuit &in, bool &changed)
{
    const auto fanout = in.fanoutCounts();

    auto rebuild_fn = [&](Circuit &out, NodeKind kind,
                          std::array<Lit, 3> f) -> Lit {
        if (kind != NodeKind::Maj3)
            panic("distributivityPass: input must be a MIG");
        return out.mkMaj(f[0], f[1], f[2]);
    };

    // We need access to the original fanins of the children, so this
    // pass cannot use the generic per-gate callback alone; walk
    // manually, mirroring rebuild().
    Circuit out;
    std::vector<Lit> map(in.nodeCount(), Circuit::kLit0);
    map[0] = Circuit::kLit0;
    for (size_t i = 0; i < in.inputCount(); ++i)
        map[in.inputs()[i]] = out.addInput(in.inputName(i));

    auto translate = [&](Lit l) {
        Lit m = map[Circuit::litNode(l)];
        return Circuit::litCompl(l) ? Circuit::litNot(m) : m;
    };

    for (const std::string &name : in.inputBusNames()) {
        const auto *bus = in.inputBus(name);
        std::vector<Lit> lits;
        for (Lit l : *bus)
            lits.push_back(translate(l));
        out.noteInputBus(name, lits);
    }

    auto is_rewritable_child = [&](Lit l) {
        if (Circuit::litCompl(l))
            return false;
        const uint32_t id = Circuit::litNode(l);
        return in.node(id).kind == NodeKind::Maj3 && fanout[id] == 1;
    };

    for (uint32_t id : in.topoOrder()) {
        const Node &nd = in.node(id);
        if (nd.kind != NodeKind::Maj3)
            panic("distributivityPass: input must be a MIG");

        Lit result = 0;
        bool rewritten = false;

        // Try each pair of fanins as the (p, q) children.
        static constexpr int pairs[3][3] = {
            {0, 1, 2}, {0, 2, 1}, {1, 2, 0}};
        for (const auto &pr : pairs) {
            const Lit lp = nd.fanin[pr[0]];
            const Lit lq = nd.fanin[pr[1]];
            const Lit lz = nd.fanin[pr[2]];
            if (!is_rewritable_child(lp) || !is_rewritable_child(lq))
                continue;
            const Node &p = in.node(Circuit::litNode(lp));
            const Node &q = in.node(Circuit::litNode(lq));

            // Find two shared fanin literals between p and q.
            std::array<Lit, 3> pf = p.fanin, qf = q.fanin;
            std::vector<Lit> shared;
            std::vector<Lit> p_rest, q_rest;
            std::array<bool, 3> q_used{false, false, false};
            for (Lit a : pf) {
                bool matched = false;
                for (int j = 0; j < 3; ++j) {
                    if (!q_used[j] && qf[j] == a) {
                        q_used[j] = true;
                        shared.push_back(a);
                        matched = true;
                        break;
                    }
                }
                if (!matched)
                    p_rest.push_back(a);
            }
            for (int j = 0; j < 3; ++j)
                if (!q_used[j])
                    q_rest.push_back(qf[j]);

            if (shared.size() == 2 && p_rest.size() == 1 &&
                q_rest.size() == 1) {
                // M(M(x,y,u), M(x,y,v), z) = M(x, y, M(u,v,z)).
                const Lit x = translate(shared[0]);
                const Lit y = translate(shared[1]);
                const Lit u = translate(p_rest[0]);
                const Lit v = translate(q_rest[0]);
                const Lit z = translate(lz);
                result = out.mkMaj(x, y, out.mkMaj(u, v, z));
                rewritten = true;
                changed = true;
                break;
            }
        }

        if (!rewritten)
            result = rebuild_fn(out, nd.kind,
                                {translate(nd.fanin[0]),
                                 translate(nd.fanin[1]),
                                 translate(nd.fanin[2])});
        map[id] = result;
    }

    for (const std::string &name : in.outputBusNames()) {
        const auto *bus = in.outputBus(name);
        std::vector<Lit> lits;
        for (Lit l : *bus)
            lits.push_back(translate(l));
        if (lits.size() == 1)
            out.addOutput(name, lits[0]);
        else
            out.addOutputBus(name, lits);
    }
    return out;
}

} // namespace

Circuit
optimizeMig(const Circuit &mig, OptReport *report)
{
    if (!mig.isMig())
        fatal("optimizeMig: circuit contains non-majority gates");

    OptReport rep;
    rep.gatesBefore = mig.topoOrder().size();
    rep.depthBefore = mig.depth();

    Circuit cur = sweep(mig);
    constexpr size_t kMaxIters = 16;
    for (rep.iterations = 0; rep.iterations < kMaxIters;
         ++rep.iterations) {
        bool changed = false;
        Circuit next = distributivityPass(cur, changed);
        next = sweep(next);
        const bool smaller =
            next.topoOrder().size() < cur.topoOrder().size();
        if (smaller || changed)
            cur = std::move(next);
        if (!changed && !smaller)
            break;
    }

    rep.gatesAfter = cur.topoOrder().size();
    rep.depthAfter = cur.depth();
    if (report)
        *report = rep;
    return cur;
}

} // namespace simdram
