/**
 * @file
 * Circuit equivalence checking.
 *
 * Two strategies, chosen automatically:
 *  - exhaustive: for circuits with at most 16 primary inputs, every
 *    assignment is simulated (packed into SIMD lanes);
 *  - random: otherwise, many rounds of random packed vectors.
 *
 * Used throughout the test suite to prove that every framework
 * transformation (AOIG -> MIG -> optimized MIG -> microprogram)
 * preserves the computed function.
 */

#ifndef SIMDRAM_LOGIC_EQUIV_H
#define SIMDRAM_LOGIC_EQUIV_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "logic/circuit.h"

namespace simdram
{

/** Outcome of an equivalence check. */
struct EquivResult
{
    bool equivalent = false; ///< True if no mismatch was found.
    bool exhaustive = false; ///< True if the check was a full proof.
    std::string message;     ///< Counterexample description if any.
};

/**
 * Checks functional equivalence of @p a and @p b.
 *
 * Circuits must have identical input and output counts; inputs and
 * outputs are matched positionally.
 *
 * @param a First circuit.
 * @param b Second circuit.
 * @param seed RNG seed for the random strategy.
 * @param random_lanes Lanes per random round.
 * @param random_rounds Number of random rounds.
 */
EquivResult checkEquivalence(const Circuit &a, const Circuit &b,
                             uint64_t seed = 1,
                             size_t random_lanes = 1024,
                             size_t random_rounds = 32);

} // namespace simdram

#endif // SIMDRAM_LOGIC_EQUIV_H
