#include "logic/simulate.h"

#include "common/error.h"

namespace simdram
{

std::vector<BitRow>
simulate(const Circuit &c, const std::vector<BitRow> &input_values)
{
    if (input_values.size() != c.inputCount())
        fatal("simulate: wrong number of input rows");
    const size_t width = input_values.empty() ? 1
                                              : input_values[0].width();
    for (const BitRow &r : input_values)
        if (r.width() != width)
            fatal("simulate: input rows must share a width");

    std::vector<BitRow> value(c.nodeCount(), BitRow(width));

    // Assign inputs.
    for (size_t i = 0; i < c.inputCount(); ++i)
        value[c.inputs()[i]] = input_values[i];

    auto lit_val = [&](Lit l) {
        BitRow v = value[Circuit::litNode(l)];
        if (Circuit::litCompl(l))
            v.invert();
        return v;
    };

    for (uint32_t id : c.topoOrder()) {
        const Node &nd = c.node(id);
        switch (nd.kind) {
          case NodeKind::And2:
            value[id] = lit_val(nd.fanin[0]) & lit_val(nd.fanin[1]);
            break;
          case NodeKind::Or2:
            value[id] = lit_val(nd.fanin[0]) | lit_val(nd.fanin[1]);
            break;
          case NodeKind::Maj3:
            value[id] = BitRow::majority3(lit_val(nd.fanin[0]),
                                          lit_val(nd.fanin[1]),
                                          lit_val(nd.fanin[2]));
            break;
          default:
            panic("simulate: unexpected node kind in topo order");
        }
    }

    std::vector<BitRow> out;
    out.reserve(c.outputs().size());
    for (Lit o : c.outputs())
        out.push_back(lit_val(o));
    return out;
}

std::map<std::string, std::vector<uint64_t>>
simulateBuses(const Circuit &c,
              const std::map<std::string, std::vector<uint64_t>>
                  &bus_values,
              size_t lanes)
{
    // Build the flat input-row list in input declaration order by
    // walking the buses in their declaration order.
    std::vector<BitRow> rows;
    rows.reserve(c.inputCount());
    for (const std::string &name : c.inputBusNames()) {
        const std::vector<Lit> *bus = c.inputBus(name);
        auto it = bus_values.find(name);
        if (it == bus_values.end())
            fatal("simulateBuses: missing values for bus " + name);
        if (it->second.size() != lanes)
            fatal("simulateBuses: bus " + name +
                  " has wrong element count");
        auto packed = packVertical(it->second, bus->size());
        for (auto &r : packed)
            rows.push_back(std::move(r));
    }
    if (rows.size() != c.inputCount())
        fatal("simulateBuses: circuit has inputs outside of buses");

    const auto out_rows = simulate(c, rows);

    std::map<std::string, std::vector<uint64_t>> result;
    size_t pos = 0;
    for (const std::string &name : c.outputBusNames()) {
        const std::vector<Lit> *bus = c.outputBus(name);
        std::vector<BitRow> slice(out_rows.begin() + pos,
                                  out_rows.begin() + pos + bus->size());
        result[name] = unpackVertical(slice);
        pos += bus->size();
    }
    return result;
}

std::vector<BitRow>
packVertical(const std::vector<uint64_t> &elements, size_t width)
{
    std::vector<BitRow> rows(width, BitRow(elements.size()));
    for (size_t i = 0; i < elements.size(); ++i)
        for (size_t j = 0; j < width && j < 64; ++j)
            if ((elements[i] >> j) & 1)
                rows[j].set(i, true);
    return rows;
}

std::vector<uint64_t>
unpackVertical(const std::vector<BitRow> &rows)
{
    if (rows.empty())
        return {};
    const size_t lanes = rows[0].width();
    std::vector<uint64_t> elements(lanes, 0);
    for (size_t j = 0; j < rows.size() && j < 64; ++j)
        for (size_t i = 0; i < lanes; ++i)
            if (rows[j].get(i))
                elements[i] |= 1ULL << j;
    return elements;
}

} // namespace simdram
