#include "logic/equiv.h"

#include <sstream>

#include "common/bitrow.h"
#include "common/rng.h"
#include "logic/simulate.h"

namespace simdram
{

namespace
{

EquivResult
compareOnce(const Circuit &a, const Circuit &b,
            const std::vector<BitRow> &inputs, bool exhaustive)
{
    const auto oa = simulate(a, inputs);
    const auto ob = simulate(b, inputs);
    for (size_t k = 0; k < oa.size(); ++k) {
        if (oa[k] == ob[k])
            continue;
        // Find the first mismatching lane for the counterexample.
        size_t lane = 0;
        for (size_t i = 0; i < oa[k].width(); ++i) {
            if (oa[k].get(i) != ob[k].get(i)) {
                lane = i;
                break;
            }
        }
        std::ostringstream os;
        os << "output " << k << " (" << a.outputName(k)
           << ") differs; inputs:";
        for (size_t j = 0; j < inputs.size(); ++j)
            os << " " << a.inputName(j) << "="
               << (inputs[j].get(lane) ? 1 : 0);
        os << " -> a=" << oa[k].get(lane) << " b=" << ob[k].get(lane);
        return {false, exhaustive, os.str()};
    }
    return {true, exhaustive, ""};
}

} // namespace

EquivResult
checkEquivalence(const Circuit &a, const Circuit &b, uint64_t seed,
                 size_t random_lanes, size_t random_rounds)
{
    if (a.inputCount() != b.inputCount())
        return {false, false, "input counts differ"};
    if (a.outputs().size() != b.outputs().size())
        return {false, false, "output counts differ"};

    const size_t n = a.inputCount();
    if (n == 0)
        return compareOnce(a, b, {}, true);

    if (n <= 16) {
        // Exhaustive: lane i encodes assignment i.
        const size_t lanes = size_t{1} << n;
        std::vector<BitRow> inputs(n, BitRow(lanes));
        for (size_t j = 0; j < n; ++j)
            for (size_t i = 0; i < lanes; ++i)
                if ((i >> j) & 1)
                    inputs[j].set(i, true);
        return compareOnce(a, b, inputs, true);
    }

    Rng rng(seed);
    for (size_t round = 0; round < random_rounds; ++round) {
        std::vector<BitRow> inputs(n, BitRow(random_lanes));
        for (auto &row : inputs) {
            // Mask the last word so the padding-bits-are-zero
            // invariant holds.
            for (size_t w = 0; w + 1 < row.wordCount(); ++w)
                row.setWord(w, rng.next());
            if (row.wordCount() > 0)
                row.setWord(row.wordCount() - 1,
                            rng.next() & row.lastWordMask());
        }
        EquivResult r = compareOnce(a, b, inputs, false);
        if (!r.equivalent)
            return r;
    }
    return {true, false, ""};
}

} // namespace simdram
