/**
 * @file
 * MIG size optimization (SIMDRAM framework step 1, part 2).
 *
 * The optimizer shrinks a majority-inverter graph using the majority
 * Boolean algebra:
 *
 *  - local axioms applied during reconstruction (handled by
 *    Circuit::mkMaj): commutativity (fanin sorting), majority
 *    M(x,x,y)=x, M(x,!x,y)=y, and inverter propagation
 *    M(!x,!y,!z)=!M(x,y,z);
 *  - the distributivity axiom right-to-left,
 *    M(M(x,y,u), M(x,y,v), z) -> M(x, y, M(u,v,z)),
 *    which removes one node whenever two single-fanout children share
 *    two fanins;
 *  - global structural hashing and dead-node sweeping via rebuild().
 *
 * Passes iterate to a fixpoint (bounded). The optimizer never changes
 * circuit function; tests verify equivalence on every operation.
 */

#ifndef SIMDRAM_LOGIC_OPTIMIZER_H
#define SIMDRAM_LOGIC_OPTIMIZER_H

#include <cstddef>

#include "logic/circuit.h"

namespace simdram
{

/** Result of an optimization run. */
struct OptReport
{
    size_t gatesBefore = 0; ///< MAJ gates before optimization.
    size_t gatesAfter = 0;  ///< MAJ gates after optimization.
    size_t depthBefore = 0; ///< Depth before optimization.
    size_t depthAfter = 0;  ///< Depth after optimization.
    size_t iterations = 0;  ///< Fixpoint iterations executed.
};

/**
 * Optimizes a MIG for size.
 *
 * @param mig The circuit to optimize; must satisfy isMig().
 * @param report Optional out-parameter with before/after statistics.
 * @return The optimized, functionally equivalent MIG.
 */
Circuit optimizeMig(const Circuit &mig, OptReport *report = nullptr);

} // namespace simdram

#endif // SIMDRAM_LOGIC_OPTIMIZER_H
