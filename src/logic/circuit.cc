#include "logic/circuit.h"

#include <algorithm>

#include "common/error.h"

namespace simdram
{

Circuit::Circuit()
{
    nodes_.push_back(Node{NodeKind::Const0, {0, 0, 0}});
}

Lit
Circuit::addInput(const std::string &name)
{
    const uint32_t id = static_cast<uint32_t>(nodes_.size());
    nodes_.push_back(Node{NodeKind::Input, {0, 0, 0}});
    inputs_.push_back(id);
    input_names_.push_back(name);
    return lit(id);
}

std::vector<Lit>
Circuit::addInputBus(const std::string &name, size_t width)
{
    std::vector<Lit> bus;
    bus.reserve(width);
    for (size_t j = 0; j < width; ++j)
        bus.push_back(addInput(name + "[" + std::to_string(j) + "]"));
    noteInputBus(name, bus);
    return bus;
}

void
Circuit::noteInputBus(const std::string &name,
                      const std::vector<Lit> &lits)
{
    if (input_buses_.count(name))
        fatal("duplicate input bus: " + name);
    input_buses_[name] = lits;
    input_bus_order_.push_back(name);
}

Lit
Circuit::mkAnd(Lit a, Lit b)
{
    if (a > b)
        std::swap(a, b);
    if (a == kLit0)
        return kLit0;
    if (a == kLit1)
        return b;
    if (a == b)
        return a;
    if (a == litNot(b))
        return kLit0;
    return intern(NodeKind::And2, {a, b, kLit0}, false);
}

Lit
Circuit::mkOr(Lit a, Lit b)
{
    if (a > b)
        std::swap(a, b);
    if (a == kLit0)
        return b;
    if (a == kLit1)
        return kLit1;
    if (a == b)
        return a;
    if (a == litNot(b))
        return kLit1;
    return intern(NodeKind::Or2, {a, b, kLit0}, false);
}

Lit
Circuit::mkMaj(Lit a, Lit b, Lit c)
{
    // Canonical fanin order.
    if (a > b)
        std::swap(a, b);
    if (b > c)
        std::swap(b, c);
    if (a > b)
        std::swap(a, b);

    // Majority axioms: M(x,x,y) = x and M(x,!x,y) = y.
    if (a == b)
        return a;
    if (b == c)
        return b;
    if (a == litNot(b))
        return c;
    if (b == litNot(c))
        return a;
    if (a == litNot(c))
        return b;

    // Complement canonicalization: M(!x,!y,!z) = !M(x,y,z). Flip when
    // two or more fanins are complemented so at most one remains.
    int ncompl = (litCompl(a) ? 1 : 0) + (litCompl(b) ? 1 : 0) +
                 (litCompl(c) ? 1 : 0);
    bool out_compl = false;
    if (ncompl >= 2) {
        a = litNot(a);
        b = litNot(b);
        c = litNot(c);
        out_compl = true;
        // Re-sort: complementing flips the LSB only, order by node
        // still holds except between equal nodes, which the axioms
        // above already removed.
        if (a > b)
            std::swap(a, b);
        if (b > c)
            std::swap(b, c);
        if (a > b)
            std::swap(a, b);
    }

    return intern(NodeKind::Maj3, {a, b, c}, out_compl);
}

void
Circuit::addOutput(const std::string &name, Lit l)
{
    outputs_.push_back(l);
    output_names_.push_back(name);
    output_buses_[name] = {l};
    output_bus_order_.push_back(name);
}

void
Circuit::addOutputBus(const std::string &name,
                      const std::vector<Lit> &lits)
{
    if (output_buses_.count(name))
        fatal("duplicate output bus: " + name);
    for (size_t j = 0; j < lits.size(); ++j) {
        outputs_.push_back(lits[j]);
        output_names_.push_back(name + "[" + std::to_string(j) + "]");
    }
    output_buses_[name] = lits;
    output_bus_order_.push_back(name);
}

size_t
Circuit::gateCount() const
{
    size_t n = 0;
    for (const Node &nd : nodes_)
        if (nd.kind == NodeKind::And2 || nd.kind == NodeKind::Or2 ||
            nd.kind == NodeKind::Maj3)
            ++n;
    return n;
}

size_t
Circuit::gateCount(NodeKind kind) const
{
    size_t n = 0;
    for (const Node &nd : nodes_)
        if (nd.kind == kind)
            ++n;
    return n;
}

const std::string &
Circuit::inputName(size_t idx) const
{
    return input_names_.at(idx);
}

const std::string &
Circuit::outputName(size_t idx) const
{
    return output_names_.at(idx);
}

const std::vector<Lit> *
Circuit::inputBus(const std::string &name) const
{
    auto it = input_buses_.find(name);
    return it == input_buses_.end() ? nullptr : &it->second;
}

const std::vector<Lit> *
Circuit::outputBus(const std::string &name) const
{
    auto it = output_buses_.find(name);
    return it == output_buses_.end() ? nullptr : &it->second;
}

bool
Circuit::isMig() const
{
    for (const Node &nd : nodes_)
        if (nd.kind == NodeKind::And2 || nd.kind == NodeKind::Or2)
            return false;
    return true;
}

bool
Circuit::isAoig() const
{
    for (const Node &nd : nodes_)
        if (nd.kind == NodeKind::Maj3)
            return false;
    return true;
}

size_t
Circuit::depth() const
{
    std::vector<size_t> d(nodes_.size(), 0);
    size_t max_depth = 0;
    for (uint32_t id = 1; id < nodes_.size(); ++id) {
        const Node &nd = nodes_[id];
        if (nd.kind == NodeKind::Input || nd.kind == NodeKind::Const0)
            continue;
        size_t in_max = 0;
        const int arity = nd.kind == NodeKind::Maj3 ? 3 : 2;
        for (int i = 0; i < arity; ++i)
            in_max = std::max(in_max, d[litNode(nd.fanin[i])]);
        d[id] = in_max + 1;
        max_depth = std::max(max_depth, d[id]);
    }
    return max_depth;
}

std::vector<uint32_t>
Circuit::topoOrder() const
{
    // Nodes are created fanins-first, so ascending id order is
    // topological; restrict to the live cone of the outputs.
    std::vector<bool> live(nodes_.size(), false);
    std::vector<uint32_t> stack;
    for (Lit o : outputs_)
        stack.push_back(litNode(o));
    while (!stack.empty()) {
        const uint32_t id = stack.back();
        stack.pop_back();
        if (live[id])
            continue;
        live[id] = true;
        const Node &nd = nodes_[id];
        if (nd.kind == NodeKind::And2 || nd.kind == NodeKind::Or2 ||
            nd.kind == NodeKind::Maj3) {
            const int arity = nd.kind == NodeKind::Maj3 ? 3 : 2;
            for (int i = 0; i < arity; ++i)
                stack.push_back(litNode(nd.fanin[i]));
        }
    }
    std::vector<uint32_t> order;
    for (uint32_t id = 1; id < nodes_.size(); ++id) {
        const Node &nd = nodes_[id];
        if (live[id] && (nd.kind == NodeKind::And2 ||
                         nd.kind == NodeKind::Or2 ||
                         nd.kind == NodeKind::Maj3))
            order.push_back(id);
    }
    return order;
}

std::vector<uint32_t>
Circuit::fanoutCounts() const
{
    std::vector<uint32_t> fanout(nodes_.size(), 0);
    for (uint32_t id : topoOrder()) {
        const Node &nd = nodes_[id];
        const int arity = nd.kind == NodeKind::Maj3 ? 3 : 2;
        for (int i = 0; i < arity; ++i)
            ++fanout[litNode(nd.fanin[i])];
    }
    for (Lit o : outputs_)
        ++fanout[litNode(o)];
    return fanout;
}

Lit
Circuit::intern(NodeKind kind, std::array<Lit, 3> fanin, bool out_compl)
{
    const GateKey key{kind, fanin};
    auto it = hash_.find(key);
    uint32_t id;
    if (it != hash_.end()) {
        id = it->second;
    } else {
        id = static_cast<uint32_t>(nodes_.size());
        nodes_.push_back(Node{kind, fanin});
        hash_.emplace(key, id);
    }
    return lit(id, out_compl);
}

} // namespace simdram
