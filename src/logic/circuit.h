/**
 * @file
 * Logic-circuit representation used by the SIMDRAM framework.
 *
 * A Circuit is a DAG of gates over named inputs with complemented
 * edges (literals). Two gate families are supported:
 *
 *  - AND2/OR2 ("AOIG" form): the operations Ambit natively supports,
 *    used for the Ambit baseline and as the user-facing description
 *    language (the paper's step-1 input);
 *  - MAJ3 ("MIG" form): the majority/NOT form SIMDRAM executes, where
 *    AND(a,b) = MAJ(a,b,0) and OR(a,b) = MAJ(a,b,1).
 *
 * NOT is free in both forms (a complemented edge); in DRAM it costs a
 * copy through a dual-contact cell, which the microprogram compiler
 * accounts for.
 *
 * Construction performs structural hashing and local simplification
 * (constant folding, redundancy removal, majority axiom
 * M(x,x,y)=x / M(x,!x,y)=y, and complement canonicalization
 * M(!x,!y,!z) = !M(x,y,z)), so equivalent subterms are shared.
 */

#ifndef SIMDRAM_LOGIC_CIRCUIT_H
#define SIMDRAM_LOGIC_CIRCUIT_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace simdram
{

/** Gate/node kinds. */
enum class NodeKind : uint8_t
{
    Const0, ///< The constant-zero node (always node 0).
    Input,  ///< A primary input.
    And2,   ///< 2-input AND.
    Or2,    ///< 2-input OR.
    Maj3,   ///< 3-input majority.
};

/** A literal: node index * 2 + complemented flag. */
using Lit = uint32_t;

/** One node of the DAG. Unused fanins are kLit0. */
struct Node
{
    NodeKind kind = NodeKind::Const0;
    std::array<Lit, 3> fanin = {0, 0, 0};
};

/** A combinational circuit DAG with named input/output buses. */
class Circuit
{
  public:
    /** Constant-false literal (node 0, uncomplemented). */
    static constexpr Lit kLit0 = 0;
    /** Constant-true literal (node 0, complemented). */
    static constexpr Lit kLit1 = 1;

    /** @return Literal for @p node with complement flag @p c. */
    static Lit lit(uint32_t node, bool c = false)
    {
        return node * 2 + (c ? 1 : 0);
    }
    /** @return The node index of @p l. */
    static uint32_t litNode(Lit l) { return l >> 1; }
    /** @return True if @p l is complemented. */
    static bool litCompl(Lit l) { return l & 1; }
    /** @return The complement of @p l. */
    static Lit litNot(Lit l) { return l ^ 1; }

    Circuit();

    // ---- Building -----------------------------------------------------

    /** Adds a single named primary input and returns its literal. */
    Lit addInput(const std::string &name);

    /**
     * Adds a @p width bit input bus; element j is named "name[j]" and
     * represents bit j (LSB first). Returns the bus literals.
     */
    std::vector<Lit> addInputBus(const std::string &name, size_t width);

    /**
     * Records an input-bus grouping over already-created inputs
     * (used when reconstructing a circuit; see logic/mig.h).
     */
    void noteInputBus(const std::string &name,
                      const std::vector<Lit> &lits);

    /** @return AND of two literals (hashed, simplified). */
    Lit mkAnd(Lit a, Lit b);

    /** @return OR of two literals (hashed, simplified). */
    Lit mkOr(Lit a, Lit b);

    /** @return MAJ of three literals (hashed, simplified). */
    Lit mkMaj(Lit a, Lit b, Lit c);

    /** Registers a single named output. */
    void addOutput(const std::string &name, Lit l);

    /** Registers a named output bus (LSB first). */
    void addOutputBus(const std::string &name,
                      const std::vector<Lit> &lits);

    // ---- Introspection --------------------------------------------------

    /** @return Total node count, including constants and inputs. */
    size_t nodeCount() const { return nodes_.size(); }

    /** @return Number of logic gates (And2/Or2/Maj3 nodes). */
    size_t gateCount() const;

    /** @return Number of gates of a specific kind. */
    size_t gateCount(NodeKind kind) const;

    /** @return Number of primary inputs. */
    size_t inputCount() const { return inputs_.size(); }

    /** @return Primary-input node ids in declaration order. */
    const std::vector<uint32_t> &inputs() const { return inputs_; }

    /** @return The name of input @p idx. */
    const std::string &inputName(size_t idx) const;

    /** @return Node @p id. */
    const Node &node(uint32_t id) const { return nodes_[id]; }

    /** @return All output literals in declaration order. */
    const std::vector<Lit> &outputs() const { return outputs_; }

    /** @return The name of output @p idx. */
    const std::string &outputName(size_t idx) const;

    /** @return The input bus named @p name, or nullptr. */
    const std::vector<Lit> *inputBus(const std::string &name) const;

    /** @return The output bus named @p name, or nullptr. */
    const std::vector<Lit> *outputBus(const std::string &name) const;

    /** @return Names of the input buses in declaration order. */
    const std::vector<std::string> &inputBusNames() const
    {
        return input_bus_order_;
    }

    /** @return Names of the output buses in declaration order. */
    const std::vector<std::string> &outputBusNames() const
    {
        return output_bus_order_;
    }

    /** @return True if every gate is a Maj3 (valid MIG). */
    bool isMig() const;

    /** @return True if no gate is a Maj3 (valid AND/OR/NOT circuit). */
    bool isAoig() const;

    /** @return Length of the longest input-to-output gate path. */
    size_t depth() const;

    /**
     * @return Node ids of the gates in a topological order (fanins
     *         before fanouts), restricted to the transitive fanin of
     *         the outputs (dead gates excluded).
     */
    std::vector<uint32_t> topoOrder() const;

    /** @return Per-node fanout counts among live gates and outputs. */
    std::vector<uint32_t> fanoutCounts() const;

  private:
    struct GateKey
    {
        NodeKind kind;
        std::array<Lit, 3> fanin;
        bool operator==(const GateKey &o) const = default;
    };

    struct GateKeyHash
    {
        size_t operator()(const GateKey &k) const
        {
            uint64_t h = static_cast<uint64_t>(k.kind);
            for (Lit f : k.fanin)
                h = h * 0x9e3779b97f4a7c15ULL + f + 1;
            return static_cast<size_t>(h ^ (h >> 32));
        }
    };

    /** Interns a gate node, applying structural hashing. */
    Lit intern(NodeKind kind, std::array<Lit, 3> fanin, bool out_compl);

    std::vector<Node> nodes_;
    std::vector<uint32_t> inputs_;
    std::vector<std::string> input_names_;
    std::vector<Lit> outputs_;
    std::vector<std::string> output_names_;
    std::map<std::string, std::vector<Lit>> input_buses_;
    std::map<std::string, std::vector<Lit>> output_buses_;
    std::vector<std::string> input_bus_order_;
    std::vector<std::string> output_bus_order_;
    std::unordered_map<GateKey, uint32_t, GateKeyHash> hash_;
};

} // namespace simdram

#endif // SIMDRAM_LOGIC_CIRCUIT_H
