/**
 * @file
 * Bit-parallel simulation of circuits, plus vertical-layout packing
 * helpers.
 *
 * Simulation evaluates every lane of a BitRow in parallel, mirroring
 * exactly what the DRAM substrate does: each SIMD lane is one bit
 * position. The same packing convention ("vertical layout") is used by
 * the DRAM vectors: packVertical()[j].get(i) == bit j of element i.
 */

#ifndef SIMDRAM_LOGIC_SIMULATE_H
#define SIMDRAM_LOGIC_SIMULATE_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bitrow.h"
#include "logic/circuit.h"

namespace simdram
{

/**
 * Simulates @p c with one BitRow per primary input (declaration
 * order); all rows must share a width.
 *
 * @return One BitRow per circuit output (declaration order).
 */
std::vector<BitRow> simulate(const Circuit &c,
                             const std::vector<BitRow> &input_values);

/**
 * Simulates @p c with per-bus element values in vertical layout.
 *
 * @param c The circuit; every input bus must appear in @p bus_values.
 * @param bus_values Map from input bus name to per-lane element
 *        values (element i drives lane i of that bus).
 * @param lanes Number of SIMD lanes to simulate.
 * @return Map from output bus name to per-lane element values,
 *         assembled from the output bits (LSB first, zero-extended
 *         into the uint64_t).
 */
std::map<std::string, std::vector<uint64_t>>
simulateBuses(const Circuit &c,
              const std::map<std::string, std::vector<uint64_t>>
                  &bus_values,
              size_t lanes);

/**
 * Packs horizontal elements into vertical rows.
 *
 * @param elements Per-lane element values.
 * @param width Number of bit rows to produce (element bits above
 *        @p width are dropped).
 * @return @p width BitRows; row j holds bit j of every element.
 */
std::vector<BitRow> packVertical(const std::vector<uint64_t> &elements,
                                 size_t width);

/**
 * Unpacks vertical rows back into horizontal elements
 * (inverse of packVertical for widths <= 64).
 */
std::vector<uint64_t> unpackVertical(const std::vector<BitRow> &rows);

} // namespace simdram

#endif // SIMDRAM_LOGIC_SIMULATE_H
