/**
 * @file
 * Conversion between circuit forms (SIMDRAM framework step 1, part 1).
 *
 * toMig() lowers an AND/OR/NOT circuit into majority/NOT form using
 * the identities AND(a,b) = MAJ(a,b,0) and OR(a,b) = MAJ(a,b,1); the
 * optimizer (optimizer.h) then shrinks the result. rebuild() is the
 * shared graph-reconstruction utility both passes are built on.
 */

#ifndef SIMDRAM_LOGIC_MIG_H
#define SIMDRAM_LOGIC_MIG_H

#include <array>
#include <functional>

#include "logic/circuit.h"

namespace simdram
{

/**
 * Callback deciding how one gate of the source circuit is re-created
 * in the destination circuit. Receives the destination circuit, the
 * source gate kind, and the already-translated fanin literals; returns
 * the literal representing the gate's output in the destination.
 */
using GateRebuildFn =
    std::function<Lit(Circuit &, NodeKind, std::array<Lit, 3>)>;

/**
 * Reconstructs @p in gate by gate through @p fn.
 *
 * Inputs, input buses, outputs, and output buses are preserved by
 * name; gates outside the transitive fanin of the outputs are dropped
 * (dead-code elimination); structural hashing in the destination
 * re-shares equivalent subterms.
 */
Circuit rebuild(const Circuit &in, const GateRebuildFn &fn);

/** Rebuilds @p in unchanged (sweeps dead gates, re-hashes). */
Circuit sweep(const Circuit &in);

/** @return @p in lowered to majority/NOT (MIG) form, unoptimized. */
Circuit toMig(const Circuit &in);

} // namespace simdram

#endif // SIMDRAM_LOGIC_MIG_H
