#include "logic/mig.h"

#include "common/error.h"

namespace simdram
{

Circuit
rebuild(const Circuit &in, const GateRebuildFn &fn)
{
    Circuit out;
    std::vector<Lit> map(in.nodeCount(), Circuit::kLit0);
    map[0] = Circuit::kLit0;

    for (size_t i = 0; i < in.inputCount(); ++i) {
        const uint32_t id = in.inputs()[i];
        map[id] = out.addInput(in.inputName(i));
    }

    auto translate = [&](Lit l) {
        Lit m = map[Circuit::litNode(l)];
        return Circuit::litCompl(l) ? Circuit::litNot(m) : m;
    };

    // Reconstruct the input-bus grouping.
    for (const std::string &name : in.inputBusNames()) {
        const auto *bus = in.inputBus(name);
        std::vector<Lit> lits;
        lits.reserve(bus->size());
        for (Lit l : *bus)
            lits.push_back(translate(l));
        out.noteInputBus(name, lits);
    }

    for (uint32_t id : in.topoOrder()) {
        const Node &nd = in.node(id);
        map[id] = fn(out, nd.kind,
                     {translate(nd.fanin[0]), translate(nd.fanin[1]),
                      translate(nd.fanin[2])});
    }

    for (const std::string &name : in.outputBusNames()) {
        const auto *bus = in.outputBus(name);
        std::vector<Lit> lits;
        lits.reserve(bus->size());
        for (Lit l : *bus)
            lits.push_back(translate(l));
        if (lits.size() == 1)
            out.addOutput(name, lits[0]);
        else
            out.addOutputBus(name, lits);
    }
    return out;
}

Circuit
sweep(const Circuit &in)
{
    return rebuild(in, [](Circuit &out, NodeKind kind,
                          std::array<Lit, 3> f) {
        switch (kind) {
          case NodeKind::And2:
            return out.mkAnd(f[0], f[1]);
          case NodeKind::Or2:
            return out.mkOr(f[0], f[1]);
          case NodeKind::Maj3:
            return out.mkMaj(f[0], f[1], f[2]);
          default:
            panic("sweep: unexpected gate kind");
        }
    });
}

Circuit
toMig(const Circuit &in)
{
    return rebuild(in, [](Circuit &out, NodeKind kind,
                          std::array<Lit, 3> f) {
        switch (kind) {
          case NodeKind::And2:
            return out.mkMaj(f[0], f[1], Circuit::kLit0);
          case NodeKind::Or2:
            return out.mkMaj(f[0], f[1], Circuit::kLit1);
          case NodeKind::Maj3:
            return out.mkMaj(f[0], f[1], f[2]);
          default:
            panic("toMig: unexpected gate kind");
        }
    });
}

} // namespace simdram
