#include "dram/subarray.h"

#include <sstream>

#include "common/error.h"

namespace simdram
{

std::string
toString(SpecialRow s)
{
    switch (s) {
      case SpecialRow::C0: return "C0";
      case SpecialRow::C1: return "C1";
      case SpecialRow::T0: return "T0";
      case SpecialRow::T1: return "T1";
      case SpecialRow::T2: return "T2";
      case SpecialRow::T3: return "T3";
      case SpecialRow::DCC0P: return "DCC0P";
      case SpecialRow::DCC0N: return "DCC0N";
      case SpecialRow::DCC1P: return "DCC1P";
      case SpecialRow::DCC1N: return "DCC1N";
    }
    return "?";
}

std::string
toString(const RowAddr &a)
{
    std::ostringstream os;
    switch (a.kind) {
      case RowAddr::Kind::Data:
        os << "D" << a.dataRow;
        break;
      case RowAddr::Kind::Special:
        os << toString(a.special);
        break;
      case RowAddr::Kind::Dual: {
        const auto rows = dualRows(a.dual);
        os << "DUAL(" << toString(rows[0]) << "," << toString(rows[1])
           << ")";
        break;
      }
      case RowAddr::Kind::Triple: {
        const auto rows = tripleRows(a.triple);
        os << "TRA(" << toString(rows[0]) << "," << toString(rows[1])
           << "," << toString(rows[2]) << ")";
        break;
      }
    }
    return os.str();
}

Subarray::Subarray(const DramConfig &cfg)
    : cfg_(cfg),
      data_(cfg.rowsPerSubarray, BitRow(cfg.rowBits)),
      c0_(cfg.rowBits, false),
      c1_(cfg.rowBits, true),
      buffer_(cfg.rowBits)
{
    for (auto &t : t_)
        t = BitRow(cfg.rowBits);
    for (auto &d : dcc_)
        d = BitRow(cfg.rowBits);
}

void
Subarray::activateState(const RowAddr &addr)
{
    if (!buffer_open_) {
        // First activation: charge sharing resolves the bitlines, then
        // the sense amplifiers restore the resolved value into every
        // activated cell. The fast path opens the buffer as a view of
        // the addressed cell (no copy); the reference path is the
        // retained seed implementation that materializes the value.
        if (addr.kind == RowAddr::Kind::Dual)
            panic("activating a dual address from precharged state has "
                  "undefined charge-sharing semantics");
        if (reference_path_) {
            buffer_view_ = nullptr;
            buffer_ = readValue(addr);
            // Keep the retained seed path an honest eager-copy
            // baseline: a read through a row address materializes a
            // fresh unshared row even under CoW storage.
            buffer_.detach();
        } else if (addr.kind == RowAddr::Kind::Triple &&
                   tra_flip_p_ == 0.0 && injector_ == nullptr) {
            // Fault-free TRA, fully fused: majority straight into the
            // first activated cell (aliasing is element-wise safe),
            // RowClone it into the other two, and leave the buffer as
            // a view — one fewer row write than computing into the
            // buffer and restoring all three.
            const auto rows = tripleRows(addr.triple);
            BitRow &r0 = specialCellMut(rows[0]);
            BitRow &r1 = specialCellMut(rows[1]);
            BitRow &r2 = specialCellMut(rows[2]);
            BitRow::majority3Into(r0, r0, r1, r2);
            r0.aapInto(r1);
            r0.aapInto(r2);
            buffer_view_ = &r0;
            buffer_view_neg_ = false;
            buffer_open_ = true;
            return;
        } else {
            openBufferFast(addr);
        }
        // Restore is value-preserving for a single row; only a triple
        // activation destroys cell contents (all three rows end up
        // holding the majority value). Injected faults model a
        // charge-sharing failure: the sense amplifiers resolve some
        // bitlines to the wrong value and restore that wrong value.
        if (addr.kind == RowAddr::Kind::Triple) {
            // Both paths materialize the majority into buffer_.
            if (tra_flip_p_ > 0.0) {
                uint64_t flipped = 0;
                for (size_t i = 0; i < buffer_.width(); ++i) {
                    if (fault_rng_.uniform() < tra_flip_p_) {
                        buffer_.set(i, !buffer_.get(i));
                        ++injected_faults_;
                        ++flipped;
                    }
                }
                if (flipped != 0)
                    ++stats_.traFaults;
            }
            if (injector_ != nullptr && injector_->sampleTra()) {
                // Charge sharing failed: one bitline resolved to the
                // wrong value and the sense amplifiers restore that
                // wrong value into all three rows. Rotate the failing
                // bitline so repeated faults don't alias.
                const size_t lane = static_cast<size_t>(
                    injector_->trasFailed() % buffer_.width());
                buffer_.set(lane, !buffer_.get(lane));
                ++injected_faults_;
                ++stats_.traFaults;
            }
            if (reference_path_)
                writeValue(addr, buffer_);
            else
                writeBufferTo(addr);
        }
        buffer_open_ = true;
    } else {
        // Row buffer is open: the sense amplifiers drive the bitlines
        // and overwrite the newly connected cells (RowClone copy).
        if (reference_path_)
            writeValue(addr, buffer_);
        else
            writeBufferTo(addr);
    }
}

void
Subarray::activate(const RowAddr &addr)
{
    activateState(addr);
    if (addr.rowsRaised() > 1)
        ++stats_.multiActivates;
    else
        ++stats_.activates;
    stats_.energyPj += cfg_.actEnergyPj(addr.rowsRaised());
}

void
Subarray::openBufferFast(const RowAddr &addr)
{
    switch (addr.kind) {
      case RowAddr::Kind::Data:
        if (addr.dataRow >= data_.size())
            panic("activate: data row out of range");
        buffer_view_ = &data_[addr.dataRow];
        buffer_view_neg_ = false;
        return;
      case RowAddr::Kind::Special: {
        const auto [cell, negated] = portCell(addr.special);
        buffer_view_ = cell;
        buffer_view_neg_ = negated;
        return;
      }
      case RowAddr::Kind::Triple: {
        buffer_view_ = nullptr;
        const auto rows = tripleRows(addr.triple);
        BitRow::majority3Into(buffer_, specialCell(rows[0]),
                              specialCell(rows[1]),
                              specialCell(rows[2]));
        return;
      }
      case RowAddr::Kind::Dual:
      default:
        panic("openBufferFast: unsupported address kind");
    }
}

void
Subarray::materializeBuffer() const
{
    if (buffer_view_ == nullptr)
        return;
    if (buffer_view_neg_)
        buffer_.assignNot(*buffer_view_);
    else
        buffer_view_->aapInto(buffer_);
    buffer_view_ = nullptr;
    buffer_view_neg_ = false;
}

void
Subarray::readBufferInto(BitRow &dst, bool negate)
{
    // A negation-parity mismatch on the viewed cell itself would
    // change the cell the view reads from; collapse the view first.
    if (buffer_view_ == &dst && negate != buffer_view_neg_)
        materializeBuffer();
    const BitRow *src = buffer_view_ != nullptr ? buffer_view_
                                                : &buffer_;
    const bool neg =
        buffer_view_ != nullptr ? (negate != buffer_view_neg_)
                                : negate;
    if (neg)
        dst.assignNot(*src);
    else
        src->aapInto(dst);
}

void
Subarray::writeBufferTo(const RowAddr &addr)
{
    switch (addr.kind) {
      case RowAddr::Kind::Data:
        if (addr.dataRow >= data_.size())
            panic("activate: data row out of range");
        readBufferInto(data_[addr.dataRow], false);
        return;
      case RowAddr::Kind::Special:
        writeSpecialFromBuffer(addr.special);
        return;
      case RowAddr::Kind::Dual: {
        const auto rows = dualRows(addr.dual);
        for (SpecialRow s : rows)
            writeSpecialFromBuffer(s);
        return;
      }
      case RowAddr::Kind::Triple: {
        const auto rows = tripleRows(addr.triple);
        for (SpecialRow s : rows)
            writeSpecialFromBuffer(s);
        return;
      }
    }
}

void
Subarray::writeSpecialFromBuffer(SpecialRow s)
{
    if (s == SpecialRow::C0 || s == SpecialRow::C1) {
        // The row decoder never drives the constant rows from the
        // sense amplifiers; a write here is a compiler bug.
        panic("writeSpecial: constant rows are read-only");
    }
    const auto [cell, negated] = portCell(s);
    readBufferInto(*cell, negated);
}

void
Subarray::enableTraFaults(double flip_probability, uint64_t seed)
{
    tra_flip_p_ = flip_probability;
    fault_rng_ = Rng(seed);
    injected_faults_ = 0;
}

void
Subarray::precharge()
{
    buffer_open_ = false;
    ++stats_.precharges;
    stats_.energyPj += cfg_.preEnergyPj();
}

void
Subarray::aap(const RowAddr &src, const RowAddr &dst)
{
    activate(src);
    activate(dst);
    precharge();
    ++stats_.aaps;
    stats_.latencyNs += cfg_.timing.aapNs();
}

void
Subarray::ap(const RowAddr &addr)
{
    activate(addr);
    precharge();
    ++stats_.aps;
    stats_.latencyNs += cfg_.timing.apNs();
}

void
Subarray::aapFunctional(const RowAddr &src, const RowAddr &dst)
{
    activateState(src);
    activateState(dst);
    buffer_open_ = false;
}

void
Subarray::apFunctional(const RowAddr &addr)
{
    activateState(addr);
    buffer_open_ = false;
}

std::pair<const BitRow *, bool>
Subarray::resolvePort(const RowAddr &addr)
{
    switch (addr.kind) {
      case RowAddr::Kind::Data:
        if (addr.dataRow >= data_.size())
            panic("activate: data row out of range");
        return {&data_[addr.dataRow], false};
      case RowAddr::Kind::Special: {
        const auto [cell, negated] = portCell(addr.special);
        return {cell, negated};
      }
      case RowAddr::Kind::Dual:
      case RowAddr::Kind::Triple:
      default:
        panic("resolvePort: not a single-row address");
    }
}

void
Subarray::writeRowsFromCell(const BitRow &src_cell, bool neg,
                            const RowAddr &dst)
{
    // Single-row destinations write straight from the source cell:
    // the self-aliasing cases are safe without a snapshot (aapInto
    // onto itself is a no-op; assignNot negates element-wise in
    // place), and skipping the snapshot saves two refcount round
    // trips on the hottest path (plain AAP, data row to data row).
    switch (dst.kind) {
      case RowAddr::Kind::Data:
        if (dst.dataRow >= data_.size())
            panic("activate: data row out of range");
        if (neg)
            data_[dst.dataRow].assignNot(src_cell);
        else
            src_cell.aapInto(data_[dst.dataRow]);
        return;
      case RowAddr::Kind::Special: {
        if (dst.special == SpecialRow::C0 ||
            dst.special == SpecialRow::C1)
            panic("writeSpecial: constant rows are read-only");
        const auto [cell, pneg] = portCell(dst.special);
        if (neg != pneg)
            cell->assignNot(src_cell);
        else
            src_cell.aapInto(*cell);
        return;
      }
      case RowAddr::Kind::Dual:
      case RowAddr::Kind::Triple:
        break;
    }

    // Multi-row destinations take an O(1) CoW snapshot first: if one
    // of the target rows overwrites the source cell itself (a DCC
    // port among them), the remaining rows must still read the
    // pre-write value, exactly as the buffered path does.
    const BitRow snap = src_cell;
    auto writeOne = [&](SpecialRow s) {
        if (s == SpecialRow::C0 || s == SpecialRow::C1)
            panic("writeSpecial: constant rows are read-only");
        const auto [cell, pneg] = portCell(s);
        if (neg != pneg)
            cell->assignNot(snap);
        else
            snap.aapInto(*cell);
    };
    if (dst.kind == RowAddr::Kind::Dual) {
        const auto rows = dualRows(dst.dual);
        for (SpecialRow s : rows)
            writeOne(s);
    } else {
        const auto rows = tripleRows(dst.triple);
        for (SpecialRow s : rows)
            writeOne(s);
    }
}

void
Subarray::cloneRowFunctional(const RowAddr &src, const RowAddr &dst)
{
    if (reference_path_) {
        aapFunctional(src, dst);
        return;
    }
    const auto [cell, neg] = resolvePort(src);
    writeRowsFromCell(*cell, neg, dst);
    // Leave the lazy row buffer viewing the source, as an AAP does.
    buffer_view_ = cell;
    buffer_view_neg_ = neg;
    buffer_open_ = false;
}

void
Subarray::traFunctional(TripleAddr t)
{
    if (reference_path_ || tra_flip_p_ > 0.0 ||
        injector_ != nullptr) {
        // Fault injection (and the seed baseline) keep the generic
        // path so RNG consumption and eager-copy costs stay exact.
        apFunctional(RowAddr::row(t));
        return;
    }
    const auto rows = tripleRows(t);
    BitRow &r0 = specialCellMut(rows[0]);
    BitRow &r1 = specialCellMut(rows[1]);
    BitRow &r2 = specialCellMut(rows[2]);
    BitRow::majority3Into(r0, r0, r1, r2);
    r0.aapInto(r1);
    r0.aapInto(r2);
    buffer_view_ = &r0;
    buffer_view_neg_ = false;
    buffer_open_ = false;
}

void
Subarray::traCloneFunctional(TripleAddr t, const RowAddr &dst)
{
    if (reference_path_ || tra_flip_p_ > 0.0 ||
        injector_ != nullptr) {
        aapFunctional(RowAddr::row(t), dst);
        return;
    }
    const auto rows = tripleRows(t);
    BitRow &r0 = specialCellMut(rows[0]);
    BitRow &r1 = specialCellMut(rows[1]);
    BitRow &r2 = specialCellMut(rows[2]);
    BitRow::majority3Into(r0, r0, r1, r2);
    r0.aapInto(r1);
    r0.aapInto(r2);
    writeRowsFromCell(r0, false, dst);
    buffer_view_ = &r0;
    buffer_view_neg_ = false;
    buffer_open_ = false;
}

const BitRow &
Subarray::peekData(size_t row) const
{
    if (row >= data_.size())
        panic("peekData: row out of range");
    return data_[row];
}

void
Subarray::pokeData(size_t row, const BitRow &value)
{
    if (row >= data_.size())
        panic("pokeData: row out of range");
    if (value.width() != cfg_.rowBits)
        panic("pokeData: width mismatch");
    // The row buffer may be a view of this cell; snapshot it first.
    materializeBuffer();
    data_[row] = value;
}

BitRow &
Subarray::pokeDataRow(size_t row)
{
    if (row >= data_.size())
        panic("pokeDataRow: row out of range");
    materializeBuffer();
    return data_[row];
}

BitRow
Subarray::peek(SpecialRow s) const
{
    return readSpecial(s);
}

void
Subarray::poke(SpecialRow s, const BitRow &value)
{
    materializeBuffer();
    writeSpecial(s, value);
}

BitRow
Subarray::readValue(const RowAddr &addr) const
{
    // Reference-path reads materialize eager copies (clone()), as
    // the seed's by-value reads did before CoW storage.
    switch (addr.kind) {
      case RowAddr::Kind::Data:
        if (addr.dataRow >= data_.size())
            panic("activate: data row out of range");
        return data_[addr.dataRow].clone();
      case RowAddr::Kind::Special:
        return readSpecial(addr.special).clone();
      case RowAddr::Kind::Triple: {
        const auto rows = tripleRows(addr.triple);
        return BitRow::majority3(readSpecial(rows[0]).clone(),
                                 readSpecial(rows[1]).clone(),
                                 readSpecial(rows[2]).clone());
      }
      case RowAddr::Kind::Dual:
      default:
        panic("readValue: unsupported address kind");
    }
}

const BitRow &
Subarray::specialCell(SpecialRow s) const
{
    switch (s) {
      case SpecialRow::C0:
        return c0_;
      case SpecialRow::C1:
        return c1_;
      case SpecialRow::T0:
        return t_[0];
      case SpecialRow::T1:
        return t_[1];
      case SpecialRow::T2:
        return t_[2];
      case SpecialRow::T3:
        return t_[3];
      case SpecialRow::DCC0P:
        return dcc_[0];
      case SpecialRow::DCC1P:
        return dcc_[1];
      case SpecialRow::DCC0N:
      case SpecialRow::DCC1N:
        break;
    }
    panic("specialCell: negated port has no direct cell");
}

BitRow &
Subarray::specialCellMut(SpecialRow s)
{
    return const_cast<BitRow &>(
        static_cast<const Subarray *>(this)->specialCell(s));
}

std::pair<BitRow *, bool>
Subarray::portCell(SpecialRow s)
{
    switch (s) {
      case SpecialRow::DCC0N:
        return {&dcc_[0], true};
      case SpecialRow::DCC1N:
        return {&dcc_[1], true};
      default:
        return {&specialCellMut(s), false};
    }
}

void
Subarray::writeValue(const RowAddr &addr, const BitRow &v)
{
    // Reference-path writes stay eager word-for-word copies
    // (copyFrom/assignNot), preserving the seed cost model.
    switch (addr.kind) {
      case RowAddr::Kind::Data:
        if (addr.dataRow >= data_.size())
            panic("activate: data row out of range");
        data_[addr.dataRow].copyFrom(v);
        break;
      case RowAddr::Kind::Special:
        writeSpecial(addr.special, v);
        break;
      case RowAddr::Kind::Dual: {
        const auto rows = dualRows(addr.dual);
        for (SpecialRow s : rows)
            writeSpecial(s, v);
        break;
      }
      case RowAddr::Kind::Triple: {
        const auto rows = tripleRows(addr.triple);
        for (SpecialRow s : rows)
            writeSpecial(s, v);
        break;
      }
    }
}

BitRow
Subarray::readSpecial(SpecialRow s) const
{
    switch (s) {
      case SpecialRow::C0:
        return c0_;
      case SpecialRow::C1:
        return c1_;
      case SpecialRow::T0:
        return t_[0];
      case SpecialRow::T1:
        return t_[1];
      case SpecialRow::T2:
        return t_[2];
      case SpecialRow::T3:
        return t_[3];
      case SpecialRow::DCC0P:
        return dcc_[0];
      case SpecialRow::DCC0N:
        return ~dcc_[0];
      case SpecialRow::DCC1P:
        return dcc_[1];
      case SpecialRow::DCC1N:
        return ~dcc_[1];
    }
    panic("readSpecial: bad row");
}

void
Subarray::writeSpecial(SpecialRow s, const BitRow &v)
{
    switch (s) {
      case SpecialRow::C0:
      case SpecialRow::C1:
        // The row decoder never drives the constant rows from the
        // sense amplifiers; a write here is a compiler bug.
        panic("writeSpecial: constant rows are read-only");
      case SpecialRow::T0:
        t_[0].copyFrom(v);
        return;
      case SpecialRow::T1:
        t_[1].copyFrom(v);
        return;
      case SpecialRow::T2:
        t_[2].copyFrom(v);
        return;
      case SpecialRow::T3:
        t_[3].copyFrom(v);
        return;
      case SpecialRow::DCC0P:
        dcc_[0].copyFrom(v);
        return;
      case SpecialRow::DCC0N:
        dcc_[0].assignNot(v);
        return;
      case SpecialRow::DCC1P:
        dcc_[1].copyFrom(v);
        return;
      case SpecialRow::DCC1N:
        dcc_[1].assignNot(v);
        return;
    }
    panic("writeSpecial: bad row");
}

} // namespace simdram
