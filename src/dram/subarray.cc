#include "dram/subarray.h"

#include <sstream>

#include "common/error.h"

namespace simdram
{

std::string
toString(SpecialRow s)
{
    switch (s) {
      case SpecialRow::C0: return "C0";
      case SpecialRow::C1: return "C1";
      case SpecialRow::T0: return "T0";
      case SpecialRow::T1: return "T1";
      case SpecialRow::T2: return "T2";
      case SpecialRow::T3: return "T3";
      case SpecialRow::DCC0P: return "DCC0P";
      case SpecialRow::DCC0N: return "DCC0N";
      case SpecialRow::DCC1P: return "DCC1P";
      case SpecialRow::DCC1N: return "DCC1N";
    }
    return "?";
}

std::string
toString(const RowAddr &a)
{
    std::ostringstream os;
    switch (a.kind) {
      case RowAddr::Kind::Data:
        os << "D" << a.dataRow;
        break;
      case RowAddr::Kind::Special:
        os << toString(a.special);
        break;
      case RowAddr::Kind::Dual: {
        const auto rows = dualRows(a.dual);
        os << "DUAL(" << toString(rows[0]) << "," << toString(rows[1])
           << ")";
        break;
      }
      case RowAddr::Kind::Triple: {
        const auto rows = tripleRows(a.triple);
        os << "TRA(" << toString(rows[0]) << "," << toString(rows[1])
           << "," << toString(rows[2]) << ")";
        break;
      }
    }
    return os.str();
}

Subarray::Subarray(const DramConfig &cfg)
    : cfg_(cfg),
      data_(cfg.rowsPerSubarray, BitRow(cfg.rowBits)),
      c0_(cfg.rowBits, false),
      c1_(cfg.rowBits, true),
      buffer_(cfg.rowBits)
{
    for (auto &t : t_)
        t = BitRow(cfg.rowBits);
    for (auto &d : dcc_)
        d = BitRow(cfg.rowBits);
}

void
Subarray::activate(const RowAddr &addr)
{
    if (!buffer_open_) {
        // First activation: charge sharing resolves the bitlines, then
        // the sense amplifiers restore the resolved value into every
        // activated cell.
        if (addr.kind == RowAddr::Kind::Dual)
            panic("activating a dual address from precharged state has "
                  "undefined charge-sharing semantics");
        buffer_ = readValue(addr);
        // Restore is value-preserving for a single row; only a triple
        // activation destroys cell contents (all three rows end up
        // holding the majority value). Injected faults model a
        // charge-sharing failure: the sense amplifiers resolve some
        // bitlines to the wrong value and restore that wrong value.
        if (addr.kind == RowAddr::Kind::Triple) {
            if (tra_flip_p_ > 0.0) {
                for (size_t i = 0; i < buffer_.width(); ++i) {
                    if (fault_rng_.uniform() < tra_flip_p_) {
                        buffer_.set(i, !buffer_.get(i));
                        ++injected_faults_;
                    }
                }
            }
            writeValue(addr, buffer_);
        }
        buffer_open_ = true;
    } else {
        // Row buffer is open: the sense amplifiers drive the bitlines
        // and overwrite the newly connected cells (RowClone copy).
        writeValue(addr, buffer_);
    }

    if (addr.rowsRaised() > 1)
        ++stats_.multiActivates;
    else
        ++stats_.activates;
    stats_.energyPj += cfg_.actEnergyPj(addr.rowsRaised());
}

void
Subarray::enableTraFaults(double flip_probability, uint64_t seed)
{
    tra_flip_p_ = flip_probability;
    fault_rng_ = Rng(seed);
    injected_faults_ = 0;
}

void
Subarray::precharge()
{
    buffer_open_ = false;
    ++stats_.precharges;
    stats_.energyPj += cfg_.preEnergyPj();
}

void
Subarray::aap(const RowAddr &src, const RowAddr &dst)
{
    activate(src);
    activate(dst);
    precharge();
    ++stats_.aaps;
    stats_.latencyNs += cfg_.timing.aapNs();
}

void
Subarray::ap(const RowAddr &addr)
{
    activate(addr);
    precharge();
    ++stats_.aps;
    stats_.latencyNs += cfg_.timing.apNs();
}

const BitRow &
Subarray::peekData(size_t row) const
{
    if (row >= data_.size())
        panic("peekData: row out of range");
    return data_[row];
}

void
Subarray::pokeData(size_t row, const BitRow &value)
{
    if (row >= data_.size())
        panic("pokeData: row out of range");
    if (value.width() != cfg_.rowBits)
        panic("pokeData: width mismatch");
    data_[row] = value;
}

BitRow
Subarray::peek(SpecialRow s) const
{
    return readSpecial(s);
}

void
Subarray::poke(SpecialRow s, const BitRow &value)
{
    writeSpecial(s, value);
}

BitRow
Subarray::readValue(const RowAddr &addr) const
{
    switch (addr.kind) {
      case RowAddr::Kind::Data:
        if (addr.dataRow >= data_.size())
            panic("activate: data row out of range");
        return data_[addr.dataRow];
      case RowAddr::Kind::Special:
        return readSpecial(addr.special);
      case RowAddr::Kind::Triple: {
        const auto rows = tripleRows(addr.triple);
        return BitRow::majority3(readSpecial(rows[0]),
                                 readSpecial(rows[1]),
                                 readSpecial(rows[2]));
      }
      case RowAddr::Kind::Dual:
      default:
        panic("readValue: unsupported address kind");
    }
}

void
Subarray::writeValue(const RowAddr &addr, const BitRow &v)
{
    switch (addr.kind) {
      case RowAddr::Kind::Data:
        if (addr.dataRow >= data_.size())
            panic("activate: data row out of range");
        data_[addr.dataRow] = v;
        break;
      case RowAddr::Kind::Special:
        writeSpecial(addr.special, v);
        break;
      case RowAddr::Kind::Dual: {
        const auto rows = dualRows(addr.dual);
        for (SpecialRow s : rows)
            writeSpecial(s, v);
        break;
      }
      case RowAddr::Kind::Triple: {
        const auto rows = tripleRows(addr.triple);
        for (SpecialRow s : rows)
            writeSpecial(s, v);
        break;
      }
    }
}

BitRow
Subarray::readSpecial(SpecialRow s) const
{
    switch (s) {
      case SpecialRow::C0:
        return c0_;
      case SpecialRow::C1:
        return c1_;
      case SpecialRow::T0:
        return t_[0];
      case SpecialRow::T1:
        return t_[1];
      case SpecialRow::T2:
        return t_[2];
      case SpecialRow::T3:
        return t_[3];
      case SpecialRow::DCC0P:
        return dcc_[0];
      case SpecialRow::DCC0N:
        return ~dcc_[0];
      case SpecialRow::DCC1P:
        return dcc_[1];
      case SpecialRow::DCC1N:
        return ~dcc_[1];
    }
    panic("readSpecial: bad row");
}

void
Subarray::writeSpecial(SpecialRow s, const BitRow &v)
{
    switch (s) {
      case SpecialRow::C0:
      case SpecialRow::C1:
        // The row decoder never drives the constant rows from the
        // sense amplifiers; a write here is a compiler bug.
        panic("writeSpecial: constant rows are read-only");
      case SpecialRow::T0:
        t_[0] = v;
        return;
      case SpecialRow::T1:
        t_[1] = v;
        return;
      case SpecialRow::T2:
        t_[2] = v;
        return;
      case SpecialRow::T3:
        t_[3] = v;
        return;
      case SpecialRow::DCC0P:
        dcc_[0] = v;
        return;
      case SpecialRow::DCC0N:
        dcc_[0] = ~v;
        return;
      case SpecialRow::DCC1P:
        dcc_[1] = v;
        return;
      case SpecialRow::DCC1N:
        dcc_[1] = ~v;
        return;
    }
    panic("writeSpecial: bad row");
}

} // namespace simdram
