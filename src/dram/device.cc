#include "dram/device.h"

#include "common/error.h"

namespace simdram
{

DramDevice::DramDevice(DramConfig cfg) : cfg_(cfg)
{
    cfg_.validate();
    banks_.reserve(cfg_.banks);
    for (size_t i = 0; i < cfg_.banks; ++i)
        banks_.emplace_back(cfg_);
}

Bank &
DramDevice::bank(size_t idx)
{
    if (idx >= banks_.size())
        panic("DramDevice::bank: index out of range");
    return banks_[idx];
}

double
DramDevice::hostTransfer(size_t bytes, DramStats &stats) const
{
    if (bytes == 0)
        return 0.0;
    const size_t bursts = (bytes + 63) / 64;
    const double latency =
        cfg_.timing.apNs() + static_cast<double>(bursts) *
        cfg_.timing.tBurst;
    stats.reads += bursts;
    stats.latencyNs += latency;
    stats.energyPj += static_cast<double>(bytes) * 8.0 *
                      cfg_.energy.eIoPjPerBit;
    return latency;
}

DramStats
DramDevice::parallelStats() const
{
    DramStats total;
    for (const auto &b : banks_)
        total.mergeParallel(b.serialStats());
    return total;
}

DramStats
DramDevice::serialStats() const
{
    DramStats total;
    for (const auto &b : banks_)
        total += b.serialStats();
    return total;
}

void
DramDevice::resetStats()
{
    for (auto &b : banks_)
        b.resetStats();
}

void
DramDevice::setFaultInjector(FaultInjector *injector)
{
    for (auto &b : banks_)
        b.setFaultInjector(injector);
}

} // namespace simdram
