#include "dram/config.h"

#include "common/error.h"

namespace simdram
{

// Tests default to 256-lane rows and 256 rows per subarray, enough
// for every operation at widths up to 16 plus a handful of vectors.
DramConfig
DramConfig::forTesting(size_t row_bits, size_t rows)
{
    DramConfig cfg;
    cfg.banks = 2;
    cfg.subarraysPerBank = 8;
    cfg.rowsPerSubarray = rows;
    cfg.rowBits = row_bits;
    cfg.computeBanks = 1;
    cfg.scratchRows = rows >= 384 ? 160 : (rows >= 192 ? 64 : 16);
    cfg.validate();
    return cfg;
}

DramConfig
DramConfig::simdramConfig(size_t compute_banks)
{
    DramConfig cfg;
    cfg.computeBanks = compute_banks;
    cfg.validate();
    return cfg;
}

double
DramConfig::rowEnergyScale() const
{
    return static_cast<double>(rowBits) /
           static_cast<double>(DramEnergy::referenceRowBits);
}

double
DramConfig::actEnergyPj(int rows_raised) const
{
    double nj = 0.0;
    switch (rows_raised) {
      case 1:
        nj = energy.eActNj;
        break;
      case 2:
        nj = energy.eActDualNj;
        break;
      case 3:
        nj = energy.eActTripleNj;
        break;
      default:
        panic("actEnergyPj: unsupported simultaneous row count");
    }
    return nj * 1e3 * rowEnergyScale();
}

double
DramConfig::preEnergyPj() const
{
    return energy.ePreNj * 1e3 * rowEnergyScale();
}

void
DramConfig::validate() const
{
    if (banks == 0 || subarraysPerBank == 0 || rowsPerSubarray == 0 ||
        rowBits == 0)
        fatal("DramConfig: geometry fields must be non-zero");
    if (computeBanks == 0 || computeBanks > banks)
        fatal("DramConfig: computeBanks must be in [1, banks]");
    if (rowsPerSubarray < scratchRows + 16)
        fatal("DramConfig: rowsPerSubarray too small for scratch + data");
    if (rowBits % 64 != 0)
        fatal("DramConfig: rowBits must be a multiple of 64");
}

} // namespace simdram
