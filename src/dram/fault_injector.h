/**
 * @file
 * Fault-injection seam for the TRA (triple-row activation) path.
 *
 * The reliability model (src/reliability) predicts that charge-sharing
 * majority fails at scaled technology nodes; this class is how the
 * runtime actually experiences those failures. One injector is
 * installed per device (DeviceGroup::setFaultInjector installs it into
 * every bank/subarray of that device) and is consulted exactly once
 * per TRA, under the device lock, so fault ordinals are a
 * deterministic function of the TRA sequence the device executes.
 *
 * Two driving modes:
 *  - deterministic(FaultPlan): corrupt exactly the TRAs whose
 *    device-global 0-based ordinal appears in the plan — reproducible
 *    end-to-end recovery tests.
 *  - statistical(rate, seed): per-TRA Bernoulli at the node's measured
 *    `traFailureRate()` (src/reliability/montecarlo.h) — the runtime
 *    sees faults at the same rate the model predicts.
 *
 * A sampled failure flips one bitline of the resolved majority before
 * the sense amplifiers restore it, so the wrong value lands in all
 * three activated rows — the paper's charge-sharing failure mode.
 * Every corrupted TRA is also counted in DramStats::traFaults.
 */

#ifndef SIMDRAM_DRAM_FAULT_INJECTOR_H
#define SIMDRAM_DRAM_FAULT_INJECTOR_H

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/rng.h"

namespace simdram
{

/**
 * Deterministic fault schedule: corrupt the TRAs whose device-global
 * 0-based ordinal (counted across every subarray of the device the
 * injector is installed on, in execution order) appears in
 * @ref injectAtTra.
 */
struct FaultPlan
{
    std::vector<uint64_t> injectAtTra;
};

/**
 * Per-device TRA fault source. Not thread-safe by itself: callers
 * (Subarray::activateState) run under the owning device's lock, which
 * also gives readers that synchronize with the worker (stream waits,
 * stats snapshots) a happens-before edge to the counters.
 */
class FaultInjector
{
  public:
    /** Injector that corrupts exactly the TRAs named by @p plan. */
    static std::shared_ptr<FaultInjector> deterministic(FaultPlan plan);

    /**
     * Injector that corrupts each TRA independently with probability
     * @p traFailureRate (e.g. the Monte-Carlo rate for a node), using
     * a private RNG seeded with @p seed.
     */
    static std::shared_ptr<FaultInjector>
    statistical(double traFailureRate, uint64_t seed);

    /**
     * Consulted once per TRA; @return true iff this TRA's result must
     * be corrupted. Advances the ordinal / RNG either way.
     */
    bool sampleTra();

    /** @return TRAs observed (== ordinals consumed) so far. */
    uint64_t trasObserved() const { return observed_; }

    /** @return TRAs this injector decided to corrupt. */
    uint64_t trasFailed() const { return failed_; }

    /** @return failed/observed, or 0 when nothing was observed. */
    double empiricalFailureRate() const
    {
        return observed_ == 0
                   ? 0.0
                   : static_cast<double>(failed_) /
                         static_cast<double>(observed_);
    }

    /** Rewinds counters (and the RNG for statistical injectors). */
    void reset();

  private:
    FaultInjector() = default;

    bool statistical_ = false;
    double rate_ = 0.0;
    uint64_t seed_ = 0;
    Rng rng_;
    std::unordered_set<uint64_t> plan_;
    uint64_t observed_ = 0;
    uint64_t failed_ = 0;
};

} // namespace simdram

#endif // SIMDRAM_DRAM_FAULT_INJECTOR_H
