/**
 * @file
 * Functional + cost model of one SIMDRAM compute subarray.
 *
 * The subarray holds regular data rows plus the special rows described
 * in address.h. It models the analog behaviour of processing-using-DRAM
 * at the bit level:
 *
 *  - Activating a single row from the precharged state latches the row
 *    value into the row buffer (sense amplifiers) and restores it into
 *    the cells.
 *  - Activating a *triple* address from the precharged state performs
 *    charge sharing between three cells per bitline; the sense
 *    amplifier resolves to the majority value, which is then restored
 *    into *all three* rows (their previous contents are destroyed) and
 *    remains in the row buffer. This is the MAJ primitive.
 *  - Activating any address while the row buffer is already open makes
 *    the sense amplifiers drive the bitlines, overwriting the addressed
 *    cells with the buffer contents (the RowClone FPM copy mechanism).
 *  - Dual-contact cells expose a negative port that reads/writes the
 *    complement (in-DRAM NOT).
 *
 * Command-count, latency, and energy statistics accumulate into an
 * internal DramStats; latency accumulates serially, which is correct
 * within a subarray (and within a bank, which serializes subarrays).
 */

#ifndef SIMDRAM_DRAM_SUBARRAY_H
#define SIMDRAM_DRAM_SUBARRAY_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitrow.h"
#include "common/rng.h"
#include "common/stats.h"
#include "dram/address.h"
#include "dram/config.h"

namespace simdram
{

/** One compute-capable DRAM subarray. */
class Subarray
{
  public:
    /**
     * Creates a subarray per @p cfg geometry.
     *
     * All data and compute rows start zeroed; C0/C1 hold their
     * constants.
     */
    explicit Subarray(const DramConfig &cfg);

    /** @return Number of regular data rows. */
    size_t dataRowCount() const { return data_.size(); }

    /** @return Bits per row (SIMD lanes). */
    size_t rowBits() const { return cfg_.rowBits; }

    // ---- Command interface -------------------------------------------

    /**
     * Issues a bare ACTIVATE.
     *
     * Functional semantics as described in the file comment. Counts the
     * command and its energy; latency is accounted at the AAP/AP macro
     * level (see aap()/ap()), matching how the SIMDRAM control unit
     * issues commands.
     */
    void activate(const RowAddr &addr);

    /** Issues a PRECHARGE, closing the row buffer. */
    void precharge();

    /**
     * ACTIVATE-ACTIVATE-PRECHARGE: copies @p src into @p dst.
     *
     * If @p src is a triple address this first computes the majority
     * (the standard Ambit "compute and copy out" idiom). @p dst may be
     * a dual address to initialize two compute rows at once.
     */
    void aap(const RowAddr &src, const RowAddr &dst);

    /**
     * ACTIVATE-PRECHARGE on @p addr.
     *
     * With a triple address this computes MAJ in place, leaving the
     * result in the three activated rows.
     */
    void ap(const RowAddr &addr);

    // ---- Backdoor access (no cost; for host modeling and tests) ------

    /** @return The stored value of data row @p row. */
    const BitRow &peekData(size_t row) const;

    /** Overwrites data row @p row (host store backdoor). */
    void pokeData(size_t row, const BitRow &value);

    /** @return The value visible through special-row port @p s. */
    BitRow peek(SpecialRow s) const;

    /** Overwrites the cell behind port @p s (testing backdoor). */
    void poke(SpecialRow s, const BitRow &value);

    /** @return True if the row buffer is open. */
    bool bufferOpen() const { return buffer_open_; }

    /** @return The current row-buffer contents. */
    const BitRow &peekBuffer() const { return buffer_; }

    // ---- Statistics ---------------------------------------------------

    /** @return Accumulated command statistics. */
    const DramStats &stats() const { return stats_; }

    /** Clears accumulated statistics (contents are kept). */
    void resetStats() { stats_.reset(); }

    // ---- Fault injection ------------------------------------------------

    /**
     * Enables TRA fault injection: after every triple-row
     * activation, each bit of the majority result flips
     * independently with probability @p flip_probability. This is
     * the functional-path counterpart of the charge-sharing failure
     * model in reliability/ — a failing TRA resolves to the wrong
     * value and that wrong value is restored into all three rows.
     */
    void enableTraFaults(double flip_probability, uint64_t seed);

    /** Disables TRA fault injection. */
    void disableTraFaults() { tra_flip_p_ = 0.0; }

    /** @return Number of bits flipped by fault injection so far. */
    uint64_t injectedFaults() const { return injected_faults_; }

  private:
    /** @return The value read through @p addr (with port negation). */
    BitRow readValue(const RowAddr &addr) const;

    /** Writes @p v through @p addr into all selected cells. */
    void writeValue(const RowAddr &addr, const BitRow &v);

    /** Reads one physical special row through its port. */
    BitRow readSpecial(SpecialRow s) const;

    /** Writes one physical special row through its port. */
    void writeSpecial(SpecialRow s, const BitRow &v);

    DramConfig cfg_; ///< Copied: subarrays outlive caller configs.
    std::vector<BitRow> data_;  ///< Regular data rows.
    BitRow c0_, c1_;            ///< Constant rows.
    BitRow t_[4];               ///< Compute rows T0..T3.
    BitRow dcc_[2];             ///< DCC cells (true stored value).
    BitRow buffer_;             ///< Sense-amplifier row buffer.
    bool buffer_open_ = false;
    DramStats stats_;
    double tra_flip_p_ = 0.0;   ///< Per-bit TRA flip probability.
    Rng fault_rng_;             ///< Fault-injection randomness.
    uint64_t injected_faults_ = 0;
};

} // namespace simdram

#endif // SIMDRAM_DRAM_SUBARRAY_H
