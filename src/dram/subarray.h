/**
 * @file
 * Functional + cost model of one SIMDRAM compute subarray.
 *
 * The subarray holds regular data rows plus the special rows described
 * in address.h. It models the analog behaviour of processing-using-DRAM
 * at the bit level:
 *
 *  - Activating a single row from the precharged state latches the row
 *    value into the row buffer (sense amplifiers) and restores it into
 *    the cells.
 *  - Activating a *triple* address from the precharged state performs
 *    charge sharing between three cells per bitline; the sense
 *    amplifier resolves to the majority value, which is then restored
 *    into *all three* rows (their previous contents are destroyed) and
 *    remains in the row buffer. This is the MAJ primitive.
 *  - Activating any address while the row buffer is already open makes
 *    the sense amplifiers drive the bitlines, overwriting the addressed
 *    cells with the buffer contents (the RowClone FPM copy mechanism).
 *  - Dual-contact cells expose a negative port that reads/writes the
 *    complement (in-DRAM NOT).
 *
 * Command-count, latency, and energy statistics accumulate into an
 * internal DramStats; latency accumulates serially, which is correct
 * within a subarray (and within a bank, which serializes subarrays).
 *
 * Data movement rides on BitRow's copy-on-write storage: a RowClone
 * copy (plain AAP) aliases the source row's payload in O(1), clones
 * of the constant rows intern one shared payload per subarray, and a
 * fault-free TRA materializes exactly one fresh row per activation —
 * the accounting above is untouched (stats describe the modeled
 * commands, not host copies). The retained reference path opts out
 * with explicit eager copies so it remains the seed-cost baseline.
 */

#ifndef SIMDRAM_DRAM_SUBARRAY_H
#define SIMDRAM_DRAM_SUBARRAY_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/bitrow.h"
#include "common/rng.h"
#include "common/stats.h"
#include "dram/address.h"
#include "dram/config.h"
#include "dram/fault_injector.h"

namespace simdram
{

/** One compute-capable DRAM subarray. */
class Subarray
{
  public:
    /**
     * Creates a subarray per @p cfg geometry.
     *
     * All data and compute rows start zeroed; C0/C1 hold their
     * constants.
     */
    explicit Subarray(const DramConfig &cfg);

    /** @return Number of regular data rows. */
    size_t dataRowCount() const { return data_.size(); }

    /** @return Bits per row (SIMD lanes). */
    size_t rowBits() const { return cfg_.rowBits; }

    // ---- Command interface -------------------------------------------

    /**
     * Issues a bare ACTIVATE.
     *
     * Functional semantics as described in the file comment. Counts the
     * command and its energy; latency is accounted at the AAP/AP macro
     * level (see aap()/ap()), matching how the SIMDRAM control unit
     * issues commands.
     */
    void activate(const RowAddr &addr);

    /** Issues a PRECHARGE, closing the row buffer. */
    void precharge();

    /**
     * ACTIVATE-ACTIVATE-PRECHARGE: copies @p src into @p dst.
     *
     * If @p src is a triple address this first computes the majority
     * (the standard Ambit "compute and copy out" idiom). @p dst may be
     * a dual address to initialize two compute rows at once.
     */
    void aap(const RowAddr &src, const RowAddr &dst);

    /**
     * ACTIVATE-PRECHARGE on @p addr.
     *
     * With a triple address this computes MAJ in place, leaving the
     * result in the three activated rows.
     */
    void ap(const RowAddr &addr);

    /**
     * State-only AAP: identical memory semantics to aap(), but
     * accumulates no statistics. Batched μProgram replay
     * (exec/replay_plan.h) uses this together with addStats(): the
     * per-command counters, latency, and energy of a μOp stream are
     * precomputed once per plan and added in one shot per segment
     * instead of being recomputed per command.
     */
    void aapFunctional(const RowAddr &src, const RowAddr &dst);

    /** State-only AP (see aapFunctional()). */
    void apFunctional(const RowAddr &addr);

    // ---- Classified functional replay entry points -------------------
    //
    // Specialized state-only commands emitted by the ReplayPlan once
    // it has classified a μOp at resolve time (exec/replay_plan.h).
    // Each is bit-exact with the equivalent aapFunctional() /
    // apFunctional() call for the address shapes it accepts, but goes
    // straight to the copy-on-write row engine: a RowClone is a
    // payload alias (O(1)), a C0/C1 clone interns the constant row's
    // payload, and a fault-free TRA materializes at most one fresh
    // row regardless of how many AAPs chain off it.

    /**
     * Plain RowClone AAP: copies the single row behind @p src into
     * every row selected by @p dst via CoW aliasing. @p src must be a
     * data row or special row (including DCC negative ports); @p dst
     * may be a data, special, dual, or triple address.
     */
    void cloneRowFunctional(const RowAddr &src, const RowAddr &dst);

    /** In-place TRA (state-only AP on a triple address). */
    void traFunctional(TripleAddr t);

    /** TRA followed by a RowClone of the result into @p dst. */
    void traCloneFunctional(TripleAddr t, const RowAddr &dst);

    /** Adds a precomputed statistics aggregate (serial latency). */
    void addStats(const DramStats &s) { stats_ += s; }

    // ---- Backdoor access (no cost; for host modeling and tests) ------

    /** @return The stored value of data row @p row. */
    const BitRow &peekData(size_t row) const;

    /** Overwrites data row @p row (host store backdoor). */
    void pokeData(size_t row, const BitRow &value);

    /**
     * Mutable access to data row @p row (host store backdoor).
     *
     * Lets the transposition unit write transposed words in place
     * instead of building rows aside and copying them in. The caller
     * must preserve the row's width and padding invariant.
     */
    BitRow &pokeDataRow(size_t row);

    /** @return The value visible through special-row port @p s. */
    BitRow peek(SpecialRow s) const;

    /** Overwrites the cell behind port @p s (testing backdoor). */
    void poke(SpecialRow s, const BitRow &value);

    /** @return True if the row buffer is open. */
    bool bufferOpen() const { return buffer_open_; }

    /** @return The current row-buffer contents. */
    const BitRow &
    peekBuffer() const
    {
        materializeBuffer();
        return buffer_;
    }

    // ---- Statistics ---------------------------------------------------

    /** @return Accumulated command statistics. */
    const DramStats &stats() const { return stats_; }

    /** Clears accumulated statistics (contents are kept). */
    void resetStats() { stats_.reset(); }

    // ---- Fault injection ------------------------------------------------

    /**
     * Enables TRA fault injection: after every triple-row
     * activation, each bit of the majority result flips
     * independently with probability @p flip_probability. This is
     * the functional-path counterpart of the charge-sharing failure
     * model in reliability/ — a failing TRA resolves to the wrong
     * value and that wrong value is restored into all three rows.
     */
    void enableTraFaults(double flip_probability, uint64_t seed);

    /** Disables TRA fault injection. */
    void disableTraFaults() { tra_flip_p_ = 0.0; }

    /** @return Number of bits flipped by fault injection so far. */
    uint64_t injectedFaults() const { return injected_faults_; }

    /**
     * Installs (or, with nullptr, removes) a fault injector consulted
     * once per TRA. Not owned: the installer (DeviceGroup keeps
     * shared ownership) must outlive the subarray's use of it. A
     * sampled failure flips one bitline of the resolved majority
     * before restore and counts into DramStats::traFaults.
     */
    void setFaultInjector(FaultInjector *injector)
    {
        injector_ = injector;
    }

    /** @return The installed fault injector, or nullptr. */
    FaultInjector *faultInjector() const { return injector_; }

    // ---- Reference vs. fast activate path -------------------------------

    /**
     * Selects the retained seed ("reference") activate path, which
     * materializes every value read through a row address as a fresh
     * *eagerly copied* BitRow and writes rows with eager word-for-word
     * copies (BitRow::detach()/copyFrom()), instead of the default
     * zero-copy path that aliases CoW payloads. Both are bit-exact
     * (the differential and replay-equivalence tests assert it); the
     * reference path exists as the semantics baseline and as the
     * honest seed-cost baseline for benchmarking — it must not
     * silently inherit the CoW speedups.
     */
    void useReferencePath(bool on) { reference_path_ = on; }

    /** @return True if the reference activate path is selected. */
    bool referencePath() const { return reference_path_; }

  private:
    /** @return The value read through @p addr (with port negation). */
    BitRow readValue(const RowAddr &addr) const;

    /**
     * @return The cell behind a positive-port special row. Negative
     *         ports have no direct cell reference; callers carry the
     *         complement as a flag (triple addresses only ever name
     *         positive ports).
     */
    const BitRow &specialCell(SpecialRow s) const;

    /** Mutable variant of specialCell(). */
    BitRow &specialCellMut(SpecialRow s);

    /**
     * Decodes a special-row port into (cell, negated): the single
     * place the fast path maps DCC negative ports onto their cells.
     */
    std::pair<BitRow *, bool> portCell(SpecialRow s);

    /** @return (cell, negated) behind a single-row address. */
    std::pair<const BitRow *, bool> resolvePort(const RowAddr &addr);

    /**
     * Writes @p src_cell (complemented if @p neg) into every row
     * selected by @p dst. Takes an O(1) CoW snapshot of the source
     * first, so destinations that overwrite the source cell itself
     * (a DCC port among the target rows) read the pre-write value,
     * exactly as the buffered path does.
     */
    void writeRowsFromCell(const BitRow &src_cell, bool neg,
                           const RowAddr &dst);

    /** Memory semantics of one ACTIVATE (no statistics). */
    void activateState(const RowAddr &addr);

    /**
     * Fast-path buffer open: points the buffer at the addressed cell
     * (possibly through the negative port) instead of copying it;
     * triple addresses materialize the majority into buffer_.
     */
    void openBufferFast(const RowAddr &addr);

    /**
     * Collapses a buffer view into buffer_ (no-op when already
     * materialized). Called before anything that reads buffer_
     * directly or mutates the viewed cell.
     */
    void materializeBuffer() const;

    /**
     * Writes the buffer value (negated if @p negate) into @p dst.
     * Materializes first when the write would mutate the viewed cell
     * (negation parity mismatch), so later reads through the view
     * stay correct.
     */
    void readBufferInto(BitRow &dst, bool negate);

    /** Fast-path writeValue: writes the buffer through @p addr. */
    void writeBufferTo(const RowAddr &addr);

    /** Fast-path write of the buffer into special row @p s. */
    void writeSpecialFromBuffer(SpecialRow s);

    /** Writes @p v through @p addr into all selected cells. */
    void writeValue(const RowAddr &addr, const BitRow &v);

    /** Reads one physical special row through its port. */
    BitRow readSpecial(SpecialRow s) const;

    /** Writes one physical special row through its port. */
    void writeSpecial(SpecialRow s, const BitRow &v);

    DramConfig cfg_; ///< Copied: subarrays outlive caller configs.
    std::vector<BitRow> data_;  ///< Regular data rows.
    BitRow c0_, c1_;            ///< Constant rows.
    BitRow t_[4];               ///< Compute rows T0..T3.
    BitRow dcc_[2];             ///< DCC cells (true stored value).
    // The row buffer is either materialized in buffer_ or, on the
    // fast path, a view of a resident cell; with CoW rows even the
    // collapse is an O(1) payload alias. Mutable: views collapse
    // lazily from const accessors.
    mutable BitRow buffer_;     ///< Sense-amplifier row buffer.
    mutable const BitRow *buffer_view_ = nullptr;
    mutable bool buffer_view_neg_ = false;
    bool buffer_open_ = false;
    DramStats stats_;
    bool reference_path_ = false; ///< Use the seed activate path.
    double tra_flip_p_ = 0.0;   ///< Per-bit TRA flip probability.
    Rng fault_rng_;             ///< Fault-injection randomness.
    uint64_t injected_faults_ = 0;
    FaultInjector *injector_ = nullptr; ///< Per-TRA fault seam.
};

} // namespace simdram

#endif // SIMDRAM_DRAM_SUBARRAY_H
