/**
 * @file
 * DRAM geometry, timing, and energy configuration.
 *
 * Defaults model a DDR4-2400 chip organized as in the SIMDRAM paper:
 * 16 banks, 8 KiB rows (65,536 bitlines = 65,536 SIMD lanes per
 * subarray), and an Ambit-style compute subarray with designated
 * compute rows (T0..T3), two dual-contact cell pairs, and two constant
 * rows. Every latency/energy number produced by the simulator is
 * derived from the constants here, so substituting a different device
 * is a one-struct change.
 */

#ifndef SIMDRAM_DRAM_CONFIG_H
#define SIMDRAM_DRAM_CONFIG_H

#include <cstddef>
#include <cstdint>

namespace simdram
{

/**
 * DDR timing parameters in nanoseconds.
 *
 * AAP (ACTIVATE-ACTIVATE-PRECHARGE) and AP (ACTIVATE-PRECHARGE) are the
 * two command macros processing-using-DRAM is built from (Ambit /
 * SIMDRAM). Their latencies follow the standard decomposition:
 * AP = tRAS + tRP (one full row cycle) and AAP = 2*tRAS + tRP (the
 * second ACTIVATE is issued back-to-back to the already-open bank,
 * before the single trailing PRECHARGE).
 */
struct DramTiming
{
    double tCk = 0.833;   ///< Clock period (DDR4-2400).
    double tRcd = 13.5;   ///< ACTIVATE to column command.
    double tRas = 32.0;   ///< ACTIVATE to PRECHARGE (same row).
    double tRp = 13.5;    ///< PRECHARGE to next ACTIVATE.
    double tCcd = 3.33;   ///< Column-to-column delay (burst gap).
    double tBurst = 3.33; ///< One BL8 data burst on the bus.

    /** @return Latency of an AP macro-op (one row cycle, tRC). */
    double apNs() const { return tRas + tRp; }

    /** @return Latency of an AAP macro-op. */
    double aapNs() const { return 2.0 * tRas + tRp; }
};

/**
 * Per-command energies for a full 8 KiB row, in nanojoules.
 *
 * Constants are derived from Micron-style DDR4 IDD current numbers
 * (IDD0/IDD2N/IDD3N at VDD=1.2V) for the activate/restore path plus
 * published Ambit estimates for multi-row activation: activating more
 * rows costs more restore energy but the bitline swing (the dominant
 * term) is paid once. I/O energy covers moving one bit across the
 * channel including termination, used for host<->DRAM transfers.
 * Energies scale linearly with the configured row width.
 */
struct DramEnergy
{
    double eActNj = 1.2;       ///< Single-row ACTIVATE incl. restore.
    double eActDualNj = 1.6;   ///< Dual-row ACTIVATE (RowClone init).
    double eActTripleNj = 2.0; ///< Triple-row ACTIVATE (TRA/MAJ).
    double ePreNj = 0.5;       ///< PRECHARGE.
    double eIoPjPerBit = 8.0;  ///< Channel transfer energy per bit.

    /** Reference row width the nJ constants are specified for. */
    static constexpr size_t referenceRowBits = 65536;
};

/**
 * Full device configuration: geometry + timing + energy.
 *
 * `computeBanks` is the number of banks SIMDRAM uses concurrently
 * (the paper's SIMDRAM:1/4/16 configurations). `scratchRows` is the
 * number of data rows per subarray the microprogram compiler may use
 * for intermediate values.
 */
struct DramConfig
{
    size_t banks = 16;            ///< Banks per device.
    size_t subarraysPerBank = 64; ///< Subarrays per bank.
    size_t rowsPerSubarray = 1024;///< Data + reserved rows.
    size_t rowBits = 65536;       ///< Bitlines per subarray (lanes).
    size_t computeBanks = 1;      ///< Banks computing concurrently.
    size_t scratchRows = 288;     ///< Rows reserved for temporaries.

    DramTiming timing;            ///< Timing parameters.
    DramEnergy energy;            ///< Energy parameters.

    /** @return A small configuration suitable for unit tests. */
    static DramConfig forTesting(size_t row_bits = 256,
                                 size_t rows = 256);

    /** @return The paper's SIMDRAM:N configuration (N compute banks). */
    static DramConfig simdramConfig(size_t compute_banks);

    /** Scale factor applied to per-row energies for this row width. */
    double rowEnergyScale() const;

    /** Energy of one ACTIVATE touching @p rows_raised rows, in pJ. */
    double actEnergyPj(int rows_raised) const;

    /** Energy of one PRECHARGE, in pJ. */
    double preEnergyPj() const;

    /** Validates invariants; calls fatal() on bad configurations. */
    void validate() const;
};

} // namespace simdram

#endif // SIMDRAM_DRAM_CONFIG_H
