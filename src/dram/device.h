/**
 * @file
 * The top-level DRAM device: a set of banks plus the channel-level
 * cost model for host transfers.
 */

#ifndef SIMDRAM_DRAM_DEVICE_H
#define SIMDRAM_DRAM_DEVICE_H

#include <cstddef>
#include <vector>

#include "dram/bank.h"

namespace simdram
{

/**
 * A DRAM device with SIMDRAM compute support.
 *
 * Owns the banks and the configuration. Host-side transfers (used by
 * the transposition unit) are modeled at burst granularity: a 64-byte
 * burst costs one column command plus bus occupancy, with energy from
 * the per-bit I/O constant.
 */
class DramDevice
{
  public:
    /** Creates a device; @p cfg is copied and validated. */
    explicit DramDevice(DramConfig cfg);

    // Banks and subarrays hold pointers into our configuration, so the
    // device must stay put once constructed.
    DramDevice(const DramDevice &) = delete;
    DramDevice &operator=(const DramDevice &) = delete;

    /** @return The device configuration. */
    const DramConfig &config() const { return cfg_; }

    /** @return Bank @p idx. */
    Bank &bank(size_t idx);

    /** @return Number of banks. */
    size_t bankCount() const { return banks_.size(); }

    /** @return SIMD lanes per subarray row. */
    size_t lanesPerSubarray() const { return cfg_.rowBits; }

    /**
     * Accounts for a host transfer of @p bytes over the channel
     * (read or write), returning its latency in ns and adding its
     * energy to @p stats. Bursts pipeline on the bus, so latency is
     * bandwidth-dominated: bursts * tBurst, plus one row cycle.
     */
    double hostTransfer(size_t bytes, DramStats &stats) const;

    /**
     * @return Statistics over all banks with bank-level parallelism
     *         (latency = max over banks; energy/counters add).
     */
    DramStats parallelStats() const;

    /**
     * @return Statistics over all banks fully serialized (latency
     *         adds). Used by the Ambit baseline's single-bank mode.
     */
    DramStats serialStats() const;

    /** Clears statistics in every bank. */
    void resetStats();

    /**
     * Installs @p injector (not owned; nullptr clears) into every
     * bank, covering both already-materialized and future subarrays.
     */
    void setFaultInjector(FaultInjector *injector);

  private:
    DramConfig cfg_;
    std::vector<Bank> banks_;
};

} // namespace simdram

#endif // SIMDRAM_DRAM_DEVICE_H
