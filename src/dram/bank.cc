#include "dram/bank.h"

#include "common/error.h"

namespace simdram
{

Bank::Bank(const DramConfig &cfg)
    : cfg_(cfg), slots_(cfg.subarraysPerBank)
{
}

Subarray &
Bank::subarray(size_t idx)
{
    if (idx >= slots_.size())
        panic("Bank::subarray: index out of range");
    if (!slots_[idx]) {
        slots_[idx] = std::make_unique<Subarray>(cfg_);
        slots_[idx]->setFaultInjector(injector_);
    }
    return *slots_[idx];
}

bool
Bank::materialized(size_t idx) const
{
    return idx < slots_.size() && slots_[idx] != nullptr;
}

DramStats
Bank::serialStats() const
{
    DramStats total;
    for (const auto &s : slots_)
        if (s)
            total += s->stats();
    return total;
}

void
Bank::resetStats()
{
    for (const auto &s : slots_)
        if (s)
            s->resetStats();
}

void
Bank::setFaultInjector(FaultInjector *injector)
{
    injector_ = injector;
    for (const auto &s : slots_)
        if (s)
            s->setFaultInjector(injector);
}

} // namespace simdram
