#include "dram/fault_injector.h"

namespace simdram
{

std::shared_ptr<FaultInjector>
FaultInjector::deterministic(FaultPlan plan)
{
    auto inj = std::shared_ptr<FaultInjector>(new FaultInjector());
    inj->plan_.insert(plan.injectAtTra.begin(),
                      plan.injectAtTra.end());
    return inj;
}

std::shared_ptr<FaultInjector>
FaultInjector::statistical(double traFailureRate, uint64_t seed)
{
    auto inj = std::shared_ptr<FaultInjector>(new FaultInjector());
    inj->statistical_ = true;
    inj->rate_ = traFailureRate;
    inj->seed_ = seed;
    inj->rng_ = Rng(seed);
    return inj;
}

bool
FaultInjector::sampleTra()
{
    const uint64_t ordinal = observed_++;
    bool fail = false;
    if (statistical_)
        fail = rng_.uniform() < rate_;
    else
        fail = plan_.count(ordinal) != 0;
    if (fail)
        ++failed_;
    return fail;
}

void
FaultInjector::reset()
{
    observed_ = 0;
    failed_ = 0;
    if (statistical_)
        rng_ = Rng(seed_);
}

} // namespace simdram
