/**
 * @file
 * Row addressing inside a SIMDRAM compute subarray.
 *
 * Following Ambit's B-group row-decoder design, a subarray exposes,
 * besides its regular data rows:
 *
 *  - two constant rows C0 (all zeros) and C1 (all ones);
 *  - four designated compute rows T0..T3 whose only purpose is to be
 *    simultaneously activated for majority computation;
 *  - two dual-contact cell (DCC) pairs. A DCC is a single storage cell
 *    with two access ports: the positive port (DCC0P/DCC1P) reads and
 *    writes the stored value directly, while the negative port
 *    (DCC0N/DCC1N) reads the complement and stores the complement of
 *    the written value. This is how in-DRAM NOT is implemented;
 *  - reserved *dual* row addresses that connect two compute rows to the
 *    bitlines at once (used as the destination of a copy to initialize
 *    two rows with one AAP);
 *  - reserved *triple* row addresses (TRA) that connect three rows to
 *    the bitlines at once; activating one from the precharged state
 *    computes the bitwise majority of the three rows via charge
 *    sharing, leaving the result in all three rows and the row buffer.
 *
 * The exact dual/triple groups below mirror Ambit's B-group address
 * table (B8..B15).
 */

#ifndef SIMDRAM_DRAM_ADDRESS_H
#define SIMDRAM_DRAM_ADDRESS_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace simdram
{

/** Physical special rows of a compute subarray. */
enum class SpecialRow : uint8_t
{
    C0,    ///< Constant all-zeros row.
    C1,    ///< Constant all-ones row.
    T0,    ///< Compute row 0.
    T1,    ///< Compute row 1.
    T2,    ///< Compute row 2.
    T3,    ///< Compute row 3.
    DCC0P, ///< Dual-contact cell 0, positive port.
    DCC0N, ///< Dual-contact cell 0, negative port.
    DCC1P, ///< Dual-contact cell 1, positive port.
    DCC1N, ///< Dual-contact cell 1, negative port.
};

/** Number of distinct SpecialRow values. */
constexpr size_t kNumSpecialRows = 10;

/** Reserved dual-row decoder addresses (Ambit B8..B11 analogues). */
enum class DualAddr : uint8_t
{
    T0T1, ///< Rows T0 and T1.
    T1T2, ///< Rows T1 and T2.
    T2T3, ///< Rows T2 and T3.
    T0T3, ///< Rows T0 and T3.
};

/** Reserved triple-row (TRA) decoder addresses (Ambit B12..B15). */
enum class TripleAddr : uint8_t
{
    T0T1T2,   ///< MAJ(T0, T1, T2).
    T1T2T3,   ///< MAJ(T1, T2, T3).
    DCC0T1T2, ///< MAJ(DCC0, T1, T2) via the positive port.
    DCC1T0T3, ///< MAJ(DCC1, T0, T3) via the positive port.
};

/** @return The two physical rows selected by a dual address. */
constexpr std::array<SpecialRow, 2>
dualRows(DualAddr a)
{
    switch (a) {
      case DualAddr::T0T1:
        return {SpecialRow::T0, SpecialRow::T1};
      case DualAddr::T1T2:
        return {SpecialRow::T1, SpecialRow::T2};
      case DualAddr::T2T3:
        return {SpecialRow::T2, SpecialRow::T3};
      case DualAddr::T0T3:
      default:
        return {SpecialRow::T0, SpecialRow::T3};
    }
}

/** @return The three physical rows selected by a triple address. */
constexpr std::array<SpecialRow, 3>
tripleRows(TripleAddr a)
{
    switch (a) {
      case TripleAddr::T0T1T2:
        return {SpecialRow::T0, SpecialRow::T1, SpecialRow::T2};
      case TripleAddr::T1T2T3:
        return {SpecialRow::T1, SpecialRow::T2, SpecialRow::T3};
      case TripleAddr::DCC0T1T2:
        return {SpecialRow::DCC0P, SpecialRow::T1, SpecialRow::T2};
      case TripleAddr::DCC1T0T3:
      default:
        return {SpecialRow::DCC1P, SpecialRow::T0, SpecialRow::T3};
    }
}

/**
 * A row address as seen by the in-subarray row decoder: either a
 * regular data row, a special row, or a reserved dual/triple address.
 */
struct RowAddr
{
    /** Address category. */
    enum class Kind : uint8_t { Data, Special, Dual, Triple };

    Kind kind = Kind::Data;
    uint32_t dataRow = 0;                  ///< Valid when kind==Data.
    SpecialRow special = SpecialRow::C0;   ///< Valid when kind==Special.
    DualAddr dual = DualAddr::T0T1;        ///< Valid when kind==Dual.
    TripleAddr triple = TripleAddr::T0T1T2;///< Valid when kind==Triple.

    /** @return A data-row address. */
    static RowAddr data(uint32_t row)
    {
        RowAddr a;
        a.kind = Kind::Data;
        a.dataRow = row;
        return a;
    }

    /** @return A special-row address. */
    static RowAddr row(SpecialRow s)
    {
        RowAddr a;
        a.kind = Kind::Special;
        a.special = s;
        return a;
    }

    /** @return A dual-row address. */
    static RowAddr row(DualAddr d)
    {
        RowAddr a;
        a.kind = Kind::Dual;
        a.dual = d;
        return a;
    }

    /** @return A triple-row (TRA) address. */
    static RowAddr row(TripleAddr t)
    {
        RowAddr a;
        a.kind = Kind::Triple;
        a.triple = t;
        return a;
    }

    /** @return The number of physical rows this address raises. */
    int
    rowsRaised() const
    {
        switch (kind) {
          case Kind::Dual:
            return 2;
          case Kind::Triple:
            return 3;
          default:
            return 1;
        }
    }

    bool operator==(const RowAddr &o) const
    {
        if (kind != o.kind)
            return false;
        switch (kind) {
          case Kind::Data:
            return dataRow == o.dataRow;
          case Kind::Special:
            return special == o.special;
          case Kind::Dual:
            return dual == o.dual;
          case Kind::Triple:
            return triple == o.triple;
        }
        return false;
    }
};

/** @return A short printable name, e.g. "D17", "T2", "TRA(T0,T1,T2)". */
std::string toString(const RowAddr &a);

/** @return The printable name of a special row, e.g. "DCC0N". */
std::string toString(SpecialRow s);

} // namespace simdram

#endif // SIMDRAM_DRAM_ADDRESS_H
