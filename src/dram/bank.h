/**
 * @file
 * A DRAM bank: a set of compute subarrays sharing one set of column
 * peripherals.
 *
 * Subarrays are created lazily because a full-size subarray holds
 * rowsPerSubarray * rowBits bits of functional state and most runs
 * touch only a few subarrays per bank. Operations within a bank
 * serialize (one subarray computes at a time); different banks operate
 * concurrently — that aggregation is done by the control unit.
 */

#ifndef SIMDRAM_DRAM_BANK_H
#define SIMDRAM_DRAM_BANK_H

#include <cstddef>
#include <memory>
#include <vector>

#include "dram/subarray.h"

namespace simdram
{

/** One DRAM bank containing lazily materialized subarrays. */
class Bank
{
  public:
    /** Creates a bank for @p cfg geometry. */
    explicit Bank(const DramConfig &cfg);

    /** @return Number of subarrays in this bank. */
    size_t subarrayCount() const { return slots_.size(); }

    /** @return Subarray @p idx, creating it on first use. */
    Subarray &subarray(size_t idx);

    /** @return True if subarray @p idx has been materialized. */
    bool materialized(size_t idx) const;

    /**
     * @return Serialized statistics over all materialized subarrays
     *         (latency adds — subarrays in one bank do not overlap).
     */
    DramStats serialStats() const;

    /** Clears statistics in all materialized subarrays. */
    void resetStats();

    /**
     * Installs @p injector (not owned; nullptr clears) into every
     * materialized subarray and every subarray created later.
     */
    void setFaultInjector(FaultInjector *injector);

  private:
    DramConfig cfg_;
    std::vector<std::unique_ptr<Subarray>> slots_;
    FaultInjector *injector_ = nullptr;
};

} // namespace simdram

#endif // SIMDRAM_DRAM_BANK_H
