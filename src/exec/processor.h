/**
 * @file
 * The SIMDRAM processor: the library's main public API.
 *
 * A Processor owns a DRAM device, a transposition unit, a control
 * unit, and a compiled-μProgram cache, and exposes a vector-style
 * interface:
 *
 *   Processor p(DramConfig::simdramConfig(16));
 *   auto a = p.alloc(1 << 20, 32);
 *   auto b = p.alloc(1 << 20, 32);
 *   auto y = p.alloc(1 << 20, 32);
 *   p.store(a, data_a);
 *   p.store(b, data_b);
 *   p.run(OpKind::Add, y, a, b);
 *   auto result = p.load(y);
 *   auto stats = p.computeStats();
 *
 * Vectors are stored vertically; elements are striped across banks in
 * subarray-sized segments (cfg.rowBits lanes each), and banks execute
 * segments concurrently. Operands of one operation must be
 * co-located (allocated while the same subarrays are current), which
 * the sequential allocator guarantees for identically sized vectors
 * allocated together.
 *
 * Three backends share this interface: the SIMDRAM compiler (greedy
 * allocation), the SIMDRAM compiler with naive allocation (ablation),
 * and the Ambit per-gate baseline.
 */

#ifndef SIMDRAM_EXEC_PROCESSOR_H
#define SIMDRAM_EXEC_PROCESSOR_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "dram/device.h"
#include "exec/control_unit.h"
#include "exec/replay_plan.h"
#include "layout/transposition_unit.h"
#include "ops/library.h"
#include "uprog/program.h"

namespace simdram
{

/** Which compiler generates the μPrograms. */
enum class Backend : uint8_t
{
    Simdram,      ///< MIG + greedy allocation (the paper's system).
    SimdramNaive, ///< MIG + naive allocation (ablation).
    Ambit,        ///< AND/OR/NOT per-gate recipes (baseline).
};

/** @return A printable backend name. */
const char *toString(Backend b);

/** Which μProgram replay path Processor::run uses. */
enum class ReplayMode : uint8_t
{
    Reference, ///< Seed path: per-segment binding via ControlUnit.
    Batched,   ///< Cached ReplayPlan, batched over segments/banks.
};

/** @return A printable replay-mode name. */
const char *toString(ReplayMode m);

/** An in-DRAM SIMD processor instance. */
class Processor
{
  public:
    /** A handle to an allocated vertical vector. */
    struct VecHandle
    {
        uint32_t id = UINT32_MAX; ///< Internal identifier.
        size_t elements = 0;      ///< Number of SIMD elements.
        size_t bits = 0;          ///< Element width in bits.

        /** @return True if the handle refers to a vector. */
        bool valid() const { return id != UINT32_MAX; }
    };

    /**
     * @param cfg Device configuration.
     * @param backend μProgram compiler selection.
     */
    explicit Processor(DramConfig cfg,
                       Backend backend = Backend::Simdram);

    /**
     * Allocates a vertical vector of @p elements elements of
     * @p bits bits each. Rows are reserved in segment order across
     * the compute banks, recycling identically-shaped freed segments
     * (see free()) before extending the bump allocation.
     */
    VecHandle alloc(size_t elements, size_t bits);

    /**
     * Frees @p v: its handle becomes invalid (any further use is
     * fatal) and its subarray segments join a free list that alloc()
     * recycles for segments of the same bank and row count, FIFO. A
     * teardown-and-recreate sequence that reallocates the same shapes
     * in the same order therefore lands on the same subarray rows —
     * preserving the co-location guarantees the bump allocator gives
     * groups allocated back to back. Mixed-shape reuse may place a
     * recycled segment in a different subarray than its (fresh)
     * operand partners; such operands fail the usual co-location
     * check at execution.
     */
    void free(const VecHandle &v);

    /** Stores host data into a vector through the transposition unit. */
    void store(const VecHandle &v, const std::vector<uint64_t> &data);

    /**
     * Stores @p n elements from @p data into @p v (pointer variant:
     * lets callers stage slices of a larger host buffer — e.g. one
     * shard of a DeviceGroup vector — without copying into a
     * temporary). @p n must equal the vector's element count.
     */
    void store(const VecHandle &v, const uint64_t *data, size_t n);

    /**
     * Fills every element of @p v with @p value using in-DRAM row
     * initialization: each bit row is RowCloned from the matching
     * constant row (C0/C1), one AAP per row per segment, with no
     * channel traffic. This is the bbop_init path — far cheaper than
     * transposing a host buffer of identical values.
     */
    void fillConstant(const VecHandle &v, uint64_t value);

    /**
     * Logical shift left within each element: dst = src << k.
     *
     * In the vertical layout a shift is pure row bookkeeping: bit
     * row j of dst is a RowClone copy of bit row j-k of src, and the
     * bottom k rows come from C0 (paper section 2: shifting needs no
     * dedicated hardware). @p dst and @p src must be distinct,
     * co-located, same-shape vectors.
     */
    void shiftLeft(const VecHandle &dst, const VecHandle &src,
                   size_t k);

    /** Logical shift right within each element: dst = src >> k. */
    void shiftRight(const VecHandle &dst, const VecHandle &src,
                    size_t k);

    /** Loads a vector back into host (horizontal) layout. */
    std::vector<uint64_t> load(const VecHandle &v);

    /**
     * Loads a vector into @p out, which must have room for the
     * vector's element count (pointer variant of load(), for writing
     * straight into a slice of a larger host buffer).
     */
    void loadInto(const VecHandle &v, uint64_t *out);

    /** Executes a unary operation: dst = op(a). */
    void run(OpKind op, const VecHandle &dst, const VecHandle &a);

    /** Executes a binary operation: dst = op(a, b). */
    void run(OpKind op, const VecHandle &dst, const VecHandle &a,
             const VecHandle &b);

    /**
     * Executes a predicated operation (if_else):
     * dst = sel ? a : b, with @p sel a 1-bit vector.
     */
    void run(OpKind op, const VecHandle &dst, const VecHandle &a,
             const VecHandle &b, const VecHandle &sel);

    /**
     * @return The compiled μProgram for @p op at @p width under the
     *         current backend (compiled once, cached).
     */
    const MicroProgram &program(OpKind op, size_t width);

    /** @return Compute statistics (banks merged in parallel). */
    DramStats computeStats() const;

    /** @return Host-transfer (transposition) statistics. */
    DramStats transferStats() const;

    /** Clears all statistics. */
    void resetStats();

    /** @return The backend in use. */
    Backend backend() const { return backend_; }

    /**
     * Selects the replay path (default: ReplayMode::Batched). The
     * reference mode reproduces the seed execution exactly — same
     * commands, same order, same stats — and exists for differential
     * testing and benchmarking of the batched path.
     */
    void setReplayMode(ReplayMode mode) { replay_mode_ = mode; }

    /** @return The replay path in use. */
    ReplayMode replayMode() const { return replay_mode_; }

    /** @return The device configuration. */
    const DramConfig &config() const { return device_.config(); }

    /** @return The underlying device (tests, advanced use). */
    DramDevice &device() { return device_; }

    /**
     * Installs @p injector (not owned; nullptr clears) into every
     * subarray of the underlying device; consulted once per TRA.
     */
    void setFaultInjector(FaultInjector *injector)
    {
        device_.setFaultInjector(injector);
    }

    /** @return The operation library (circuit access). */
    OperationLibrary &library() { return lib_; }

  private:
    /** One subarray-sized piece of a vector. */
    struct Segment
    {
        size_t bank = 0;
        size_t sub = 0;
        uint32_t baseRow = 0;
        size_t lanes = 0; ///< Elements in this segment.
    };

    struct VecInfo
    {
        size_t elements = 0;
        size_t bits = 0;
        std::vector<Segment> segments;
        /** Set by free(); any further use of the handle is fatal. */
        bool freed = false;
    };

    /** One recycled subarray segment, keyed by its row count. */
    struct FreeSeg
    {
        Segment seg;
        size_t rows = 0;
    };

    const VecInfo &info(const VecHandle &v) const;

    /** Reserves @p rows rows for segment @p seg_idx in its bank. */
    Segment reserveSegment(size_t seg_idx, size_t rows,
                           size_t lanes);

    void execute(const MicroProgram &prog,
                 const std::vector<const VecInfo *> &inputs,
                 const VecInfo &out);

    /** @return The cached replay plan for @p prog (built once). */
    const ReplayPlan &planFor(const MicroProgram &prog);

    DramDevice device_;
    TranspositionUnit tunit_;
    ControlUnit cu_;
    OperationLibrary lib_;
    Backend backend_;
    ReplayMode replay_mode_ = ReplayMode::Batched;

    std::vector<VecInfo> vectors_;
    // Per-bank bump allocation state.
    std::vector<size_t> cur_sub_;
    std::vector<uint32_t> next_row_;
    /** Freed segments awaiting reuse (FIFO per shape; see free()). */
    std::vector<FreeSeg> free_segs_;

    std::map<std::pair<OpKind, size_t>,
             std::unique_ptr<MicroProgram>>
        prog_cache_;
    // Keyed by program address: programs are owned by prog_cache_
    // behind unique_ptr, so their addresses are stable.
    std::map<const MicroProgram *, ReplayPlan> plan_cache_;
};

} // namespace simdram

#endif // SIMDRAM_EXEC_PROCESSOR_H
