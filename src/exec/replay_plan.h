/**
 * @file
 * Pre-resolved μProgram replay plans (the batched execution path).
 *
 * The seed control-unit path (ControlUnit::execute) rebuilds the
 * virtual-to-physical row table and re-dispatches every μOp through a
 * binding closure for every segment of every operation. A ReplayPlan
 * instead resolves each μOp operand ONCE per μProgram into either a
 * fixed special/dual/triple address or a (region, offset) pair; a
 * segment is then described by nothing but its region base rows, and
 * replaying a segment is a tight loop of base+offset adds.
 *
 * On top of the address resolution, each μOp is *classified* at plan
 * build time so replay emits alias/intern operations instead of row
 * copies on the copy-on-write row engine (dram/subarray.h):
 *
 *  - ConstClone — AAP whose source is C0/C1: the destination rows
 *    intern the constant row's payload (a *constant* operand);
 *  - CopyRow — plain single-row AAP: the destination aliases the
 *    source payload, O(1) until someone writes (a *read-shared*
 *    operand — arbitrarily many aliases of one payload);
 *  - Tra / TraClone — triple-row activation (the only μOp that
 *    computes): materializes exactly one fresh row per TRA, the
 *    *write-once* destination every downstream AAP then aliases;
 *  - Generic — anything else falls back to the unclassified
 *    aapFunctional()/apFunctional() path (also used verbatim when
 *    fault injection or the reference path is active).
 *
 * replayBatch() additionally replays the whole μOp stream over many
 * segments at once, op-outer / segment-inner, so the per-op decode is
 * amortized across every segment and bank executing the operation.
 * Segments that live in the *same* subarray share its compute rows
 * (T0..T3, DCCs), so they cannot be interleaved at μOp granularity;
 * the batch replays in waves of distinct subarrays, which preserves
 * the seed path's per-subarray command order exactly (and therefore
 * its memory state and DramStats — asserted by the
 * replay-equivalence tests).
 */

#ifndef SIMDRAM_EXEC_REPLAY_PLAN_H
#define SIMDRAM_EXEC_REPLAY_PLAN_H

#include <cstdint>
#include <vector>

#include "dram/subarray.h"
#include "uprog/program.h"

namespace simdram
{

/** A μProgram with operand bindings resolved to region offsets. */
class ReplayPlan
{
  public:
    /** One segment to replay: a target subarray plus its base rows. */
    struct SegmentBinding
    {
        Subarray *sub = nullptr; ///< Target subarray.
        /** Base row per region: inputs, then outputs, then scratch. */
        std::vector<uint32_t> bases;
    };

    ReplayPlan() = default;

    /**
     * Builds the plan for @p prog on a device configured as @p cfg:
     * validates every virtual row reference, splits each operand into
     * fixed vs. region-relative form, and precomputes the statistics
     * aggregate (counters, serial latency, energy) of one full
     * stream replay — command accounting identical to issuing every
     * aap()/ap() individually, paid once per segment instead of once
     * per command. The program must outlive the plan.
     */
    ReplayPlan(const MicroProgram &prog, const DramConfig &cfg);

    /** @return Number of region bases a SegmentBinding must carry. */
    size_t regionCount() const { return n_regions_; }

    /** @return Number of μOps in the plan. */
    size_t opCount() const { return ops_.size(); }

    /** How the plan classified its μOps (see the file comment). */
    struct FormCounts
    {
        size_t constClones = 0; ///< C0/C1 interns.
        size_t rowCopies = 0;   ///< Plain RowClone aliases.
        size_t traClones = 0;   ///< TRA + clone-out.
        size_t tras = 0;        ///< In-place TRA.
        size_t generics = 0;    ///< Unclassified fallbacks.
    };

    /** @return The per-form μOp counts (introspection/tests). */
    FormCounts formCounts() const;

    /** @return The statistics of one full stream replay. */
    const DramStats &segmentStats() const { return seg_stats_; }

    /** Replays the μOp stream on one segment. */
    void replay(Subarray &sub,
                const std::vector<uint32_t> &bases) const;

    /**
     * Replays the μOp stream over all of @p segs, op-outer across
     * waves of distinct subarrays (see file comment).
     */
    void replayBatch(const std::vector<SegmentBinding> &segs) const;

  private:
    /** One resolved μOp operand. */
    struct Operand
    {
        RowAddr fixed;       ///< Used when !isData.
        uint32_t region = 0; ///< Index into SegmentBinding::bases.
        uint32_t offset = 0; ///< Row offset within the region.
        bool isData = false; ///< Region-relative vs. fixed address.
    };

    /** One resolved μOp. */
    struct PlanOp
    {
        /** Resolve-time classification (see the file comment). */
        enum class Form : uint8_t
        {
            ConstClone, ///< AAP C0/C1 -> dst: intern the constant.
            CopyRow,    ///< AAP single row -> dst: CoW alias.
            TraClone,   ///< AAP TRA -> dst: majority, clone out.
            Tra,        ///< AP on a TRA: majority in place.
            Generic,    ///< Fallback: aapFunctional/apFunctional.
        };

        MicroOp::Kind kind = MicroOp::Kind::Ap;
        Form form = Form::Generic;
        Operand src;
        Operand dst;
    };

    /** Applies one resolved op to one bound segment. */
    static void apply(const PlanOp &op, Subarray &sub,
                      const std::vector<uint32_t> &bases);

    std::vector<PlanOp> ops_;
    size_t n_regions_ = 0;
    DramStats seg_stats_; ///< Aggregate of one stream replay.
};

} // namespace simdram

#endif // SIMDRAM_EXEC_REPLAY_PLAN_H
