/**
 * @file
 * The SIMDRAM control unit (framework step 3).
 *
 * The control unit lives in the memory controller. Given a μProgram
 * (fetched from the controller's μProgram memory by a bbop
 * instruction) and the physical locations of the operands, it binds
 * the program's virtual rows to physical rows and issues the AAP/AP
 * sequence to the target subarray.
 */

#ifndef SIMDRAM_EXEC_CONTROL_UNIT_H
#define SIMDRAM_EXEC_CONTROL_UNIT_H

#include <cstdint>
#include <vector>

#include "dram/subarray.h"
#include "uprog/program.h"

namespace simdram
{

/**
 * Binds virtual μProgram rows to physical rows and executes.
 *
 * This is the retained *reference* replay path: it re-binds the
 * virtual row table and re-dispatches every μOp per call. Production
 * execution goes through exec/replay_plan.h, which resolves bindings
 * once per μProgram and replays segments in batch; the
 * replay-equivalence tests assert both paths produce identical memory
 * state and identical DramStats.
 */
class ControlUnit
{
  public:
    /**
     * Executes @p prog on @p sub.
     *
     * @param sub Target subarray.
     * @param prog The μProgram.
     * @param input_bases Physical base row of each input region,
     *        in region order.
     * @param output_bases Physical base row of each output region.
     * @param scratch_base Physical base row of the scratch region.
     */
    void execute(Subarray &sub, const MicroProgram &prog,
                 const std::vector<uint32_t> &input_bases,
                 const std::vector<uint32_t> &output_bases,
                 uint32_t scratch_base) const;
};

} // namespace simdram

#endif // SIMDRAM_EXEC_CONTROL_UNIT_H
