#include "exec/replay_plan.h"

#include "common/error.h"

namespace simdram
{

ReplayPlan::ReplayPlan(const MicroProgram &prog, const DramConfig &cfg)
{
    // Region table in virtual-row order: inputs, outputs, scratch.
    struct Region
    {
        size_t start;
        size_t rows;
    };
    std::vector<Region> regions;
    size_t start = 0;
    for (const RowRegion &r : prog.inputRegions) {
        regions.push_back({start, r.rows});
        start += r.rows;
    }
    for (const RowRegion &r : prog.outputRegions) {
        regions.push_back({start, r.rows});
        start += r.rows;
    }
    regions.push_back({start, prog.scratchRows});
    n_regions_ = regions.size();
    const size_t virtual_rows = start + prog.scratchRows;

    auto resolve = [&](const RowAddr &a) {
        Operand op;
        if (a.kind != RowAddr::Kind::Data) {
            op.fixed = a;
            return op;
        }
        if (a.dataRow >= virtual_rows)
            panic("ReplayPlan: virtual row out of range");
        op.isData = true;
        for (size_t r = 0; r < regions.size(); ++r) {
            if (a.dataRow < regions[r].start + regions[r].rows) {
                op.region = static_cast<uint32_t>(r);
                op.offset = static_cast<uint32_t>(a.dataRow -
                                                  regions[r].start);
                break;
            }
        }
        return op;
    };

    // Precompute the statistics of one stream replay, accumulating
    // in command order with exactly the per-command constants
    // Subarray::aap/ap would use, so one bulk add per segment equals
    // the seed path's per-command accounting.
    auto countActivate = [&](const RowAddr &a) {
        const int raised = a.rowsRaised();
        if (raised > 1)
            ++seg_stats_.multiActivates;
        else
            ++seg_stats_.activates;
        seg_stats_.energyPj += cfg.actEnergyPj(raised);
    };

    // Classify each μOp once: which zero-copy entry point of the CoW
    // row engine replays it (see the file comment).
    auto classify = [](const MicroOp &op) {
        if (op.kind == MicroOp::Kind::Aap) {
            switch (op.src.kind) {
              case RowAddr::Kind::Triple:
                return PlanOp::Form::TraClone;
              case RowAddr::Kind::Special:
                if (op.src.special == SpecialRow::C0 ||
                    op.src.special == SpecialRow::C1)
                    return PlanOp::Form::ConstClone;
                return PlanOp::Form::CopyRow;
              case RowAddr::Kind::Data:
                return PlanOp::Form::CopyRow;
              case RowAddr::Kind::Dual:
              default:
                return PlanOp::Form::Generic;
            }
        }
        return op.src.kind == RowAddr::Kind::Triple
                   ? PlanOp::Form::Tra
                   : PlanOp::Form::Generic;
    };

    ops_.reserve(prog.ops.size());
    for (const MicroOp &op : prog.ops) {
        PlanOp p;
        p.kind = op.kind;
        p.form = classify(op);
        p.src = resolve(op.src);
        countActivate(op.src);
        if (op.kind == MicroOp::Kind::Aap) {
            p.dst = resolve(op.dst);
            countActivate(op.dst);
            ++seg_stats_.aaps;
            seg_stats_.latencyNs += cfg.timing.aapNs();
        } else {
            ++seg_stats_.aps;
            seg_stats_.latencyNs += cfg.timing.apNs();
        }
        ++seg_stats_.precharges;
        seg_stats_.energyPj += cfg.preEnergyPj();
        ops_.push_back(p);
    }
}

ReplayPlan::FormCounts
ReplayPlan::formCounts() const
{
    FormCounts c;
    for (const PlanOp &op : ops_) {
        switch (op.form) {
          case PlanOp::Form::ConstClone: ++c.constClones; break;
          case PlanOp::Form::CopyRow: ++c.rowCopies; break;
          case PlanOp::Form::TraClone: ++c.traClones; break;
          case PlanOp::Form::Tra: ++c.tras; break;
          case PlanOp::Form::Generic: ++c.generics; break;
        }
    }
    return c;
}

void
ReplayPlan::apply(const PlanOp &op, Subarray &sub,
                  const std::vector<uint32_t> &bases)
{
    const RowAddr src =
        op.src.isData
            ? RowAddr::data(bases[op.src.region] + op.src.offset)
            : op.src.fixed;
    switch (op.form) {
      case PlanOp::Form::ConstClone:
      case PlanOp::Form::CopyRow:
        sub.cloneRowFunctional(
            src, op.dst.isData
                     ? RowAddr::data(bases[op.dst.region] +
                                     op.dst.offset)
                     : op.dst.fixed);
        return;
      case PlanOp::Form::TraClone:
        sub.traCloneFunctional(
            op.src.fixed.triple,
            op.dst.isData
                ? RowAddr::data(bases[op.dst.region] +
                                op.dst.offset)
                : op.dst.fixed);
        return;
      case PlanOp::Form::Tra:
        sub.traFunctional(op.src.fixed.triple);
        return;
      case PlanOp::Form::Generic:
        break;
    }
    if (op.kind == MicroOp::Kind::Aap) {
        const RowAddr dst =
            op.dst.isData
                ? RowAddr::data(bases[op.dst.region] + op.dst.offset)
                : op.dst.fixed;
        sub.aapFunctional(src, dst);
    } else {
        sub.apFunctional(src);
    }
}

void
ReplayPlan::replay(Subarray &sub,
                   const std::vector<uint32_t> &bases) const
{
    if (bases.size() != n_regions_)
        panic("ReplayPlan: wrong number of region bases");
    for (const PlanOp &op : ops_)
        apply(op, sub, bases);
    sub.addStats(seg_stats_);
}

void
ReplayPlan::replayBatch(const std::vector<SegmentBinding> &segs) const
{
    for (const SegmentBinding &s : segs)
        if (s.sub == nullptr || s.bases.size() != n_regions_)
            panic("ReplayPlan: malformed segment binding");

    // Segments sharing a subarray also share its compute rows and
    // must replay the full stream back-to-back, not interleaved per
    // μOp. Group segments by subarray (original order within each
    // group); round k then replays the k-th segment of every group —
    // distinct subarrays within a round, so op-outer is safe.
    std::vector<Subarray *> subs;
    std::vector<std::vector<const SegmentBinding *>> groups;
    for (const SegmentBinding &s : segs) {
        size_t g = 0;
        while (g < subs.size() && subs[g] != s.sub)
            ++g;
        if (g == subs.size()) {
            subs.push_back(s.sub);
            groups.emplace_back();
        }
        groups[g].push_back(&s);
    }

    std::vector<const SegmentBinding *> round;
    for (size_t k = 0;; ++k) {
        round.clear();
        for (const auto &group : groups)
            if (k < group.size())
                round.push_back(group[k]);
        if (round.empty())
            break;
        for (const PlanOp &op : ops_)
            for (const SegmentBinding *s : round)
                apply(op, *s->sub, s->bases);
        for (const SegmentBinding *s : round)
            s->sub->addStats(seg_stats_);
    }
}

} // namespace simdram
