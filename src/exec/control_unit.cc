#include "exec/control_unit.h"

#include "common/error.h"

namespace simdram
{

void
ControlUnit::execute(Subarray &sub, const MicroProgram &prog,
                     const std::vector<uint32_t> &input_bases,
                     const std::vector<uint32_t> &output_bases,
                     uint32_t scratch_base) const
{
    if (input_bases.size() != prog.inputRegions.size())
        fatal("ControlUnit: wrong number of input bases");
    if (output_bases.size() != prog.outputRegions.size())
        fatal("ControlUnit: wrong number of output bases");

    // Virtual -> physical row table.
    std::vector<uint32_t> phys(prog.virtualRowCount());
    size_t v = 0;
    for (size_t r = 0; r < prog.inputRegions.size(); ++r)
        for (size_t j = 0; j < prog.inputRegions[r].rows; ++j)
            phys[v++] = input_bases[r] + static_cast<uint32_t>(j);
    for (size_t r = 0; r < prog.outputRegions.size(); ++r)
        for (size_t j = 0; j < prog.outputRegions[r].rows; ++j)
            phys[v++] = output_bases[r] + static_cast<uint32_t>(j);
    for (size_t j = 0; j < prog.scratchRows; ++j)
        phys[v++] = scratch_base + static_cast<uint32_t>(j);

    auto bind = [&](const RowAddr &a) {
        if (a.kind != RowAddr::Kind::Data)
            return a;
        if (a.dataRow >= phys.size())
            panic("ControlUnit: virtual row out of range");
        return RowAddr::data(phys[a.dataRow]);
    };

    for (const MicroOp &op : prog.ops) {
        if (op.kind == MicroOp::Kind::Aap)
            sub.aap(bind(op.src), bind(op.dst));
        else
            sub.ap(bind(op.src));
    }
}

} // namespace simdram
