#include "exec/processor.h"

#include <algorithm>

#include "ambit/ambit_synth.h"
#include "common/error.h"
#include "uprog/allocator.h"

namespace simdram
{

const char *
toString(Backend b)
{
    switch (b) {
      case Backend::Simdram:
        return "SIMDRAM";
      case Backend::SimdramNaive:
        return "SIMDRAM-naive";
      case Backend::Ambit:
        return "Ambit";
    }
    return "?";
}

const char *
toString(ReplayMode m)
{
    switch (m) {
      case ReplayMode::Reference:
        return "reference";
      case ReplayMode::Batched:
        return "batched";
    }
    return "?";
}

Processor::Processor(DramConfig cfg, Backend backend)
    : device_(cfg),
      tunit_(device_.config()),
      backend_(backend),
      cur_sub_(device_.config().banks, 0),
      next_row_(device_.config().banks, 0)
{
}

Processor::VecHandle
Processor::alloc(size_t elements, size_t bits)
{
    if (elements == 0 || bits == 0)
        fatal("Processor::alloc: empty vector");
    const DramConfig &cfg = device_.config();

    VecInfo vi;
    vi.elements = elements;
    vi.bits = bits;
    const size_t lanes_per_seg = cfg.rowBits;
    const size_t n_segs =
        (elements + lanes_per_seg - 1) / lanes_per_seg;
    for (size_t s = 0; s < n_segs; ++s) {
        const size_t lanes =
            std::min(lanes_per_seg, elements - s * lanes_per_seg);
        vi.segments.push_back(reserveSegment(s, bits, lanes));
    }

    vectors_.push_back(std::move(vi));
    VecHandle h;
    h.id = static_cast<uint32_t>(vectors_.size() - 1);
    h.elements = elements;
    h.bits = bits;
    return h;
}

Processor::Segment
Processor::reserveSegment(size_t seg_idx, size_t rows, size_t lanes)
{
    const DramConfig &cfg = device_.config();
    const size_t bank = seg_idx % cfg.computeBanks;
    const uint32_t data_limit = static_cast<uint32_t>(
        cfg.rowsPerSubarray - cfg.scratchRows);

    if (rows > data_limit)
        fatal("Processor: vector wider than a subarray data region");

    // Recycle an identically-shaped freed segment first, FIFO: a
    // teardown-and-recreate sequence that reallocates the same shapes
    // in the same order lands on the same subarray rows, preserving
    // the co-location the bump allocator would have produced.
    for (size_t i = 0; i < free_segs_.size(); ++i) {
        if (free_segs_[i].rows == rows &&
            free_segs_[i].seg.bank == bank) {
            Segment seg = free_segs_[i].seg;
            seg.lanes = lanes;
            free_segs_.erase(free_segs_.begin() +
                             static_cast<std::ptrdiff_t>(i));
            return seg;
        }
    }

    if (next_row_[bank] + rows > data_limit) {
        // Check BEFORE advancing: a failed alloc must leave the bump
        // state intact, or the next alloc would hand out a segment in
        // a subarray that does not exist.
        if (cur_sub_[bank] + 1 >= cfg.subarraysPerBank)
            fatal("Processor: out of subarrays in bank " +
                  std::to_string(bank));
        ++cur_sub_[bank];
        next_row_[bank] = 0;
    }

    Segment seg;
    seg.bank = bank;
    seg.sub = cur_sub_[bank];
    seg.baseRow = next_row_[bank];
    seg.lanes = lanes;
    next_row_[bank] += static_cast<uint32_t>(rows);
    return seg;
}

void
Processor::free(const VecHandle &v)
{
    if (!v.valid() || v.id >= vectors_.size())
        fatal("Processor: invalid vector handle");
    VecInfo &vi = vectors_[v.id];
    if (vi.freed)
        fatal("Processor::free: vector already freed");
    for (const Segment &seg : vi.segments)
        free_segs_.push_back(FreeSeg{seg, vi.bits});
    vi.freed = true;
    vi.segments.clear();
    vi.segments.shrink_to_fit();
}

const Processor::VecInfo &
Processor::info(const VecHandle &v) const
{
    if (!v.valid() || v.id >= vectors_.size())
        fatal("Processor: invalid vector handle");
    if (vectors_[v.id].freed)
        fatal("Processor: use of freed vector handle");
    return vectors_[v.id];
}

void
Processor::store(const VecHandle &v, const std::vector<uint64_t> &data)
{
    store(v, data.data(), data.size());
}

void
Processor::store(const VecHandle &v, const uint64_t *data, size_t n)
{
    const VecInfo &vi = info(v);
    if (n != vi.elements)
        fatal("Processor::store: element count mismatch");
    size_t off = 0;
    for (const Segment &seg : vi.segments) {
        Subarray &sub = device_.bank(seg.bank).subarray(seg.sub);
        tunit_.storeVertical(sub, seg.baseRow, vi.bits,
                             data + off, seg.lanes);
        off += seg.lanes;
    }
}

void
Processor::fillConstant(const VecHandle &v, uint64_t value)
{
    const VecInfo &vi = info(v);
    if (vi.bits < 64 && (value >> vi.bits) != 0)
        fatal("Processor::fillConstant: value wider than the vector");
    for (const Segment &seg : vi.segments) {
        Subarray &sub = device_.bank(seg.bank).subarray(seg.sub);
        // C0/C1 clones intern the constant row's payload on the fast
        // path; keep the reference mode an eager seed baseline.
        sub.useReferencePath(replay_mode_ == ReplayMode::Reference);
        for (size_t j = 0; j < vi.bits; ++j) {
            const bool bit = j < 64 && ((value >> j) & 1);
            sub.aap(RowAddr::row(bit ? SpecialRow::C1
                                     : SpecialRow::C0),
                    RowAddr::data(seg.baseRow +
                                  static_cast<uint32_t>(j)));
        }
    }
}

namespace
{

/** Shared row-copy shift used by shiftLeft/shiftRight. */
void
shiftRows(Subarray &sub, uint32_t dst_base, uint32_t src_base,
          size_t bits, size_t k, bool left)
{
    for (size_t j = 0; j < bits; ++j) {
        const uint32_t dst_row =
            dst_base + static_cast<uint32_t>(j);
        // Left shift: dst[j] = src[j-k]; right shift: src[j+k].
        bool in_range;
        size_t src_j = 0;
        if (left) {
            in_range = j >= k;
            if (in_range)
                src_j = j - k;
        } else {
            in_range = j + k < bits;
            if (in_range)
                src_j = j + k;
        }
        if (in_range)
            sub.aap(RowAddr::data(src_base +
                                  static_cast<uint32_t>(src_j)),
                    RowAddr::data(dst_row));
        else
            sub.aap(RowAddr::row(SpecialRow::C0),
                    RowAddr::data(dst_row));
    }
}

} // namespace

void
Processor::shiftLeft(const VecHandle &dst, const VecHandle &src,
                     size_t k)
{
    const VecInfo &d = info(dst);
    const VecInfo &s = info(src);
    if (dst.id == src.id)
        fatal("Processor::shift: in-place shift is not supported");
    if (d.bits != s.bits || d.elements != s.elements)
        fatal("Processor::shift: shape mismatch");
    for (size_t i = 0; i < d.segments.size(); ++i) {
        const Segment &ds = d.segments[i];
        const Segment &ss = s.segments[i];
        if (ds.bank != ss.bank || ds.sub != ss.sub)
            fatal("Processor::shift: vectors are not co-located");
        Subarray &sub = device_.bank(ds.bank).subarray(ds.sub);
        sub.useReferencePath(replay_mode_ == ReplayMode::Reference);
        shiftRows(sub, ds.baseRow, ss.baseRow, d.bits, k, true);
    }
}

void
Processor::shiftRight(const VecHandle &dst, const VecHandle &src,
                      size_t k)
{
    const VecInfo &d = info(dst);
    const VecInfo &s = info(src);
    if (dst.id == src.id)
        fatal("Processor::shift: in-place shift is not supported");
    if (d.bits != s.bits || d.elements != s.elements)
        fatal("Processor::shift: shape mismatch");
    for (size_t i = 0; i < d.segments.size(); ++i) {
        const Segment &ds = d.segments[i];
        const Segment &ss = s.segments[i];
        if (ds.bank != ss.bank || ds.sub != ss.sub)
            fatal("Processor::shift: vectors are not co-located");
        Subarray &sub = device_.bank(ds.bank).subarray(ds.sub);
        sub.useReferencePath(replay_mode_ == ReplayMode::Reference);
        shiftRows(sub, ds.baseRow, ss.baseRow, d.bits, k, false);
    }
}

std::vector<uint64_t>
Processor::load(const VecHandle &v)
{
    std::vector<uint64_t> out(info(v).elements);
    loadInto(v, out.data());
    return out;
}

void
Processor::loadInto(const VecHandle &v, uint64_t *out)
{
    const VecInfo &vi = info(v);
    size_t off = 0;
    for (const Segment &seg : vi.segments) {
        Subarray &sub = device_.bank(seg.bank).subarray(seg.sub);
        const auto part = tunit_.loadVertical(sub, seg.baseRow,
                                              vi.bits, seg.lanes);
        std::copy(part.begin(), part.end(), out + off);
        off += seg.lanes;
    }
}

const MicroProgram &
Processor::program(OpKind op, size_t width)
{
    const auto key = std::make_pair(op, width);
    auto it = prog_cache_.find(key);
    if (it != prog_cache_.end())
        return *it->second;

    MicroProgram prog;
    switch (backend_) {
      case Backend::Simdram:
        prog = compileMig(lib_.mig(op, width), CompileOptions{});
        break;
      case Backend::SimdramNaive: {
        CompileOptions opts;
        opts.greedy = false;
        prog = compileMig(lib_.mig(op, width), opts);
        break;
      }
      case Backend::Ambit:
        prog = compileAmbit(lib_.aoig(op, width));
        break;
    }
    if (prog.scratchRows > device_.config().scratchRows)
        fatal("Processor: μProgram needs " +
              std::to_string(prog.scratchRows) +
              " scratch rows; raise DramConfig::scratchRows");

    auto owned = std::make_unique<MicroProgram>(std::move(prog));
    const MicroProgram &ref = *owned;
    prog_cache_.emplace(key, std::move(owned));
    return ref;
}

void
Processor::run(OpKind op, const VecHandle &dst, const VecHandle &a)
{
    const auto sig = signatureOf(op, a.bits);
    if (sig.numInputs != 1 || sig.hasSel)
        fatal("Processor::run: operation is not unary");
    execute(program(op, a.bits), {&info(a)}, info(dst));
}

void
Processor::run(OpKind op, const VecHandle &dst, const VecHandle &a,
               const VecHandle &b)
{
    const auto sig = signatureOf(op, a.bits);
    if (sig.numInputs != 2 || sig.hasSel)
        fatal("Processor::run: operation is not binary");
    if (a.bits != b.bits)
        fatal("Processor::run: operand width mismatch");
    execute(program(op, a.bits), {&info(a), &info(b)}, info(dst));
}

void
Processor::run(OpKind op, const VecHandle &dst, const VecHandle &a,
               const VecHandle &b, const VecHandle &sel)
{
    const auto sig = signatureOf(op, a.bits);
    if (!(sig.numInputs == 2 && sig.hasSel))
        fatal("Processor::run: operation is not predicated");
    if (sel.bits != 1)
        fatal("Processor::run: predicate must be 1 bit wide");
    execute(program(op, a.bits), {&info(a), &info(b), &info(sel)},
            info(dst));
}

const ReplayPlan &
Processor::planFor(const MicroProgram &prog)
{
    auto it = plan_cache_.find(&prog);
    if (it == plan_cache_.end())
        it = plan_cache_
                 .emplace(&prog, ReplayPlan(prog, device_.config()))
                 .first;
    return it->second;
}

void
Processor::execute(const MicroProgram &prog,
                   const std::vector<const VecInfo *> &inputs,
                   const VecInfo &out)
{
    const DramConfig &cfg = device_.config();
    if (inputs.empty())
        panic("Processor::execute: no inputs");
    const size_t elements = inputs[0]->elements;
    for (const VecInfo *vi : inputs)
        if (vi->elements != elements)
            fatal("Processor: operand element counts differ");
    if (out.elements != elements)
        fatal("Processor: destination element count differs");
    if (inputs.size() != prog.inputRegions.size())
        panic("Processor: operand count does not match μProgram");
    const size_t expected_out = prog.outputRowCount();
    if (out.bits != expected_out)
        fatal("Processor: destination must be " +
              std::to_string(expected_out) + " bits wide");

    const uint32_t scratch_base = static_cast<uint32_t>(
        cfg.rowsPerSubarray - cfg.scratchRows);
    const bool batched = replay_mode_ == ReplayMode::Batched;

    // Validation + binding pass: one SegmentBinding per segment, with
    // region bases ordered inputs / outputs / scratch (the layout
    // both ControlUnit and ReplayPlan use).
    std::vector<ReplayPlan::SegmentBinding> segs;
    const size_t n_segs = inputs[0]->segments.size();
    segs.reserve(n_segs);
    for (size_t s = 0; s < n_segs; ++s) {
        const Segment &seg0 = inputs[0]->segments[s];
        ReplayPlan::SegmentBinding binding;
        binding.bases.reserve(inputs.size() + 2);
        for (const VecInfo *vi : inputs) {
            const Segment &seg = vi->segments[s];
            if (seg.bank != seg0.bank || seg.sub != seg0.sub)
                fatal("Processor: operands are not co-located; "
                      "allocate matching vectors back to back");
            binding.bases.push_back(seg.baseRow);
        }
        const Segment &oseg = out.segments[s];
        if (oseg.bank != seg0.bank || oseg.sub != seg0.sub)
            fatal("Processor: destination is not co-located with "
                  "the operands");
        // The μProgram may write output rows before its last read of
        // the inputs, so in-place operation is not supported.
        for (const VecInfo *vi : inputs) {
            const Segment &seg = vi->segments[s];
            const uint32_t in_end =
                seg.baseRow + static_cast<uint32_t>(vi->bits);
            const uint32_t out_end =
                oseg.baseRow + static_cast<uint32_t>(out.bits);
            if (seg.baseRow < out_end && oseg.baseRow < in_end)
                fatal("Processor: destination overlaps an operand; "
                      "in-place execution is not supported");
        }
        binding.bases.push_back(oseg.baseRow);
        binding.bases.push_back(scratch_base);
        binding.sub = &device_.bank(seg0.bank).subarray(seg0.sub);
        binding.sub->useReferencePath(!batched);
        segs.push_back(std::move(binding));
    }

    if (batched) {
        planFor(prog).replayBatch(segs);
        return;
    }
    // Reference mode: the seed per-segment path, re-binding and
    // re-dispatching through the control unit.
    for (const ReplayPlan::SegmentBinding &b : segs) {
        const std::vector<uint32_t> in_bases(
            b.bases.begin(), b.bases.end() - 2);
        cu_.execute(*b.sub, prog, in_bases,
                    {b.bases[b.bases.size() - 2]}, scratch_base);
    }
}

DramStats
Processor::computeStats() const
{
    return device_.parallelStats();
}

DramStats
Processor::transferStats() const
{
    return tunit_.stats();
}

void
Processor::resetStats()
{
    device_.resetStats();
    tunit_.resetStats();
}

} // namespace simdram
