/**
 * @file
 * Database analytics scenario: a TPC-H Q6-style predicate scan with
 * in-DRAM selection and revenue computation, expressed through the
 * bbop ISA (the way a compiler would lower it), then cross-checked
 * against a host evaluation and priced on every platform.
 */

#include <cstdio>

#include "apps/tpch.h"
#include "isa/dispatcher.h"

using namespace simdram;

int
main()
{
    // ---- Functional execution on the simulated device -----------------
    Processor proc(DramConfig::forTesting(256, 512));
    const bool ok = tpchVerify(proc);
    std::printf("Q6-style scan on the SIMDRAM device: %s\n",
                ok ? "result matches host evaluation"
                   : "MISMATCH (bug!)");

    // ---- The same query as an explicit bbop instruction stream --------
    Processor proc2(DramConfig::forTesting(256, 512));
    BbopDispatcher d(proc2);
    const size_t rows = 240;
    const LineitemTable t = makeLineitem(rows);

    const uint16_t shipdate = d.defineObject(rows, 16);
    const uint16_t lo = d.defineObject(rows, 16);
    const uint16_t hi = d.defineObject(rows, 16);
    const uint16_t m1 = d.defineObject(rows, 1);
    const uint16_t m2 = d.defineObject(rows, 1);
    const uint16_t match = d.defineObject(rows, 1);
    d.writeObject(shipdate, t.shipdate);

    // The predicate constants never cross the channel: bbop_init
    // materializes them by in-DRAM row initialization.
    std::vector<BbopInstr> program = {
        BbopInstr::trsp(shipdate, 16),
        BbopInstr::trsp(lo, 16),
        BbopInstr::trsp(hi, 16),
        BbopInstr::trsp(m1, 1),
        BbopInstr::trsp(m2, 1),
        BbopInstr::trsp(match, 1),
        BbopInstr::init(lo, 16, 200),
        BbopInstr::init(hi, 16, 565),
        BbopInstr::binary(OpKind::Ge, 16, m1, shipdate, lo),
        BbopInstr::binary(OpKind::Gt, 16, m2, hi, shipdate),
        BbopInstr::binary(OpKind::BitAnd, 1, match, m1, m2),
        BbopInstr::trspInv(match, 1),
    };
    std::printf("\nbbop program (as a compiler would emit it):\n");
    for (const auto &i : program)
        std::printf("  %-34s ; 0x%016llx\n", toAsm(i).c_str(),
                    static_cast<unsigned long long>(encodeBbop(i)));
    d.exec(program);

    size_t hits = 0;
    for (uint64_t v : d.readObject(match))
        hits += v & 1;
    std::printf("rows in shipdate window: %zu of %zu\n", hits, rows);

    // ---- Cost on every platform ---------------------------------------
    std::printf("\nScan of 64 Mi rows, all platforms:\n");
    auto engines = standardEngines();
    for (auto &e : engines) {
        const auto c = tpchCost(*e, size_t{1} << 26);
        std::printf("  %-10s  %9.2f ms   %9.3f mJ\n",
                    e->name().c_str(), c.latencyNs() * 1e-6,
                    c.energyPj() * 1e-9);
    }
    return ok ? 0 : 1;
}
