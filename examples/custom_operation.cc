/**
 * @file
 * Extensibility scenario: implement a *new* operation through the
 * framework — the paper's central claim is that SIMDRAM supports
 * arbitrary new operations without hardware changes.
 *
 * The new operation here is a fused "clamped absolute difference"
 * y = min(|a - b|, 63), described as an ordinary AND/OR/NOT circuit
 * (what a library author would write), pushed through all three
 * framework steps, and executed on the simulated device.
 */

#include <cstdio>

#include "exec/control_unit.h"
#include "logic/equiv.h"
#include "logic/mig.h"
#include "logic/optimizer.h"
#include "logic/simulate.h"
#include "ops/wordgates.h"
#include "uprog/allocator.h"

using namespace simdram;

namespace
{

/** Builds y = min(|a-b|, 63) at @p width bits in @p style. */
Circuit
buildClampedAbsDiff(size_t width, GateStyle style)
{
    Circuit c;
    WordGates g(c, style);
    const auto a = c.addInputBus("a", width);
    const auto b = c.addInputBus("b", width);

    // |a-b| = a>=b ? a-b : b-a.
    const auto diff = g.sub(a, b);
    const auto rdiff = g.sub(b, a);
    const auto abs_diff =
        g.muxBus(diff.carry /* no borrow => a>=b */, diff.sum,
                 rdiff.sum);

    // min(x, 63).
    const auto cap = g.constant(63, width);
    const auto cmp = g.compareUnsigned(abs_diff, cap);
    c.addOutputBus("y", g.muxBus(cmp.gt, cap, abs_diff));
    return c;
}

} // namespace

int
main()
{
    constexpr size_t kWidth = 8;

    // ---- Step 1: AND/OR/NOT description -> optimized MAJ/NOT ----------
    const Circuit aoig = buildClampedAbsDiff(kWidth, GateStyle::Aoig);
    OptReport rep;
    const Circuit mig =
        optimizeMig(toMig(buildClampedAbsDiff(kWidth, GateStyle::Mig)),
                    &rep);
    std::printf("step 1: %zu AND/OR gates -> %zu MAJ gates "
                "(optimizer: %zu -> %zu)\n",
                aoig.topoOrder().size(), mig.topoOrder().size(),
                rep.gatesBefore, rep.gatesAfter);

    const auto eq = checkEquivalence(aoig, mig);
    std::printf("        equivalence: %s (%s)\n",
                eq.equivalent ? "proven" : "FAILED",
                eq.exhaustive ? "exhaustive" : "randomized");

    // ---- Step 2: MAJ/NOT -> microprogram --------------------------------
    CompileReport crep;
    const MicroProgram prog = compileMig(mig, {}, &crep);
    std::printf("step 2: %zu AAPs + %zu APs, %zu scratch rows\n",
                crep.aaps, crep.aps, crep.scratchRows);

    // ---- Step 3: execute on the DRAM device ------------------------------
    DramConfig cfg = DramConfig::forTesting(256, 512);
    Subarray sub(cfg);
    const size_t lanes = 256;
    std::vector<uint64_t> va(lanes), vb(lanes);
    for (size_t i = 0; i < lanes; ++i) {
        va[i] = (i * 37) & 0xff;
        vb[i] = (i * 91 + 13) & 0xff;
    }
    const auto rows_a = packVertical(va, kWidth);
    const auto rows_b = packVertical(vb, kWidth);
    for (size_t j = 0; j < kWidth; ++j) {
        sub.pokeData(j, rows_a[j]);
        sub.pokeData(kWidth + j, rows_b[j]);
    }
    ControlUnit cu;
    cu.execute(sub, prog, {0, static_cast<uint32_t>(kWidth)},
               {static_cast<uint32_t>(2 * kWidth)},
               static_cast<uint32_t>(cfg.rowsPerSubarray -
                                     cfg.scratchRows));

    std::vector<BitRow> out_rows;
    for (size_t j = 0; j < kWidth; ++j)
        out_rows.push_back(sub.peekData(2 * kWidth + j));
    const auto got = unpackVertical(out_rows);

    size_t wrong = 0;
    for (size_t i = 0; i < lanes; ++i) {
        const int64_t d = static_cast<int64_t>(va[i]) -
                          static_cast<int64_t>(vb[i]);
        const uint64_t expect =
            std::min<uint64_t>(static_cast<uint64_t>(d < 0 ? -d : d),
                               63);
        if (got[i] != expect)
            ++wrong;
    }
    std::printf("step 3: executed on %zu lanes, %s "
                "(%llu AAPs issued, %.1f ns, %.1f nJ)\n",
                lanes, wrong == 0 ? "all lanes correct" : "MISMATCH",
                static_cast<unsigned long long>(sub.stats().aaps),
                sub.stats().latencyNs, sub.stats().energyPj * 1e-3);
    return wrong == 0 && eq.equivalent ? 0 : 1;
}
