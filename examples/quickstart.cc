/**
 * @file
 * Quickstart: add two vectors inside DRAM and inspect the cost.
 *
 * This is the README's first example: allocate vertical vectors,
 * move data in through the transposition unit, execute one bbop, and
 * read the command-level statistics that every SIMDRAM result in the
 * paper is derived from.
 */

#include <cstdio>

#include "exec/processor.h"

using namespace simdram;

int
main()
{
    // A small device configuration keeps the functional simulation
    // instant (256 lanes per subarray, 768 rows); swap in
    // DramConfig::simdramConfig(16) for the paper's full-size
    // SIMDRAM:16 geometry.
    Processor proc(DramConfig::forTesting(256, 768));

    const size_t n = 1000;
    const size_t width = 32;

    auto a = proc.alloc(n, width);
    auto b = proc.alloc(n, width);
    auto y = proc.alloc(n, width);

    std::vector<uint64_t> da(n), db(n);
    for (size_t i = 0; i < n; ++i) {
        da[i] = 3 * i + 1;
        db[i] = 1000000 + i;
    }
    proc.store(a, da);
    proc.store(b, db);

    proc.run(OpKind::Add, y, a, b);

    const auto result = proc.load(y);
    std::printf("y[0]   = %llu (expect %llu)\n",
                static_cast<unsigned long long>(result[0]),
                static_cast<unsigned long long>(da[0] + db[0]));
    std::printf("y[999] = %llu (expect %llu)\n",
                static_cast<unsigned long long>(result[999]),
                static_cast<unsigned long long>(da[999] + db[999]));

    const DramStats compute = proc.computeStats();
    const DramStats io = proc.transferStats();
    std::printf("\nIn-DRAM compute: %s\n", compute.summary().c_str());
    std::printf("Layout transfer: %.1f ns, %.1f pJ\n", io.latencyNs,
                io.energyPj);

    // The compiled microprogram behind the add (framework steps 1+2).
    const MicroProgram &prog = proc.program(OpKind::Add, width);
    std::printf("\nadd.%zu microprogram: %zu AAPs + %zu APs, "
                "%zu scratch rows\n",
                width, prog.aapCount(), prog.apCount(),
                prog.scratchRows);
    return 0;
}
