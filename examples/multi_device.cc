/**
 * @file
 * Walkthrough of the multi-device runtime: shard vectors across a
 * group of SIMDRAM devices, submit asynchronous bbop instruction
 * streams, overlap host work with in-DRAM execution, and read back
 * merged statistics.
 *
 * Run:  ./examples/multi_device
 */

#include <cstdio>
#include <vector>

#include "dram/fault_injector.h"
#include "runtime/stream_executor.h"
#include "stream/stream_builder.h"

using namespace simdram;

int
main()
{
    // Four devices, each a small test-sized SIMDRAM chip. Vectors
    // are split across them in whole subarray segments.
    const size_t kDevices = 4;
    DeviceGroup group(DramConfig::forTesting(256, 512), kDevices);

    const size_t n = 1000; // 4 segments: one per device
    std::printf("DeviceGroup: %zu devices, %zu-lane segments\n",
                group.deviceCount(), group.config().rowBits);

    // --- Part 1: the synchronous sharded API -------------------
    ShardedVec a = group.alloc(n, 16);
    ShardedVec b = group.alloc(n, 16);
    ShardedVec y = group.alloc(n, 16);
    for (size_t d = 0; d < group.deviceCount(); ++d)
        std::printf("  shard %zu: elements [%zu, %zu)\n", d,
                    group.shardOffset(a, d),
                    group.shardOffset(a, d) +
                        group.shardElements(a, d));

    std::vector<uint64_t> da(n), db(n);
    for (size_t i = 0; i < n; ++i) {
        da[i] = i & 0xffff;
        db[i] = (3 * i) & 0xffff;
    }
    group.store(a, da);
    group.store(b, db);
    group.run(OpKind::Add, y, a, b);
    const auto sum = group.load(y);
    std::printf("sync:  y[7] = %llu (expect %llu)\n",
                static_cast<unsigned long long>(sum[7]),
                static_cast<unsigned long long>((da[7] + db[7]) &
                                                0xffff));

    // --- Part 2: asynchronous bbop streams ---------------------
    // The StreamExecutor is the memory-controller service: encoded
    // bbop streams go in, futures come out; one worker thread per
    // device executes each stream against that device's shards.
    StreamExecutor ex(group);
    const uint16_t img = ex.defineObject(n, 16);
    const uint16_t delta = ex.defineObject(n, 16);
    const uint16_t out = ex.defineObject(n, 16);
    ex.writeObject(img, da);

    // Streams are built fluently; widths come from the object table.
    // The optimizer passes (src/stream) run at submit: here
    // dead-write elimination drops trsp(delta) and trsp(out) — both
    // vertical images are fully overwritten (by the init and the Add)
    // before anything reads them.
    StreamBuilder builder(ex);
    StreamHandle h = builder.trsp(img)
                         .trsp(delta)
                         .init(delta, 100) // constant, no channel I/O
                         .trsp(out)
                         .binary(OpKind::Add, out, img, delta)
                         .trspInv(out)
                         .submit();
    // ... the host is free here while the stream executes ...
    const StreamResult r = h.wait();
    std::printf("async: %zu instructions (%zu optimized away), "
                "%.0f ns simulated, %.0f us wall\n",
                r.instructions, r.optimizedInstructions,
                r.compute.latencyNs, r.wallNs / 1e3);
    std::printf("async: out[7] = %llu (expect %llu)\n",
                static_cast<unsigned long long>(
                    ex.readObject(out)[7]),
                static_cast<unsigned long long>((da[7] + 100) &
                                                0xffff));

    // Malformed streams are rejected as a unit, before execution.
    try {
        ex.submit({BbopInstr::trsp(999, 16)});
    } catch (const BbopError &e) {
        std::printf("rejected bad stream: %s\n", e.what());
    }

    // --- Part 3: bounded queues and backpressure ---------------
    // A production service bounds its queues. With Block (the
    // default policy) a submitter that runs ahead of the devices is
    // throttled; with Reject it gets a typed, side-effect-free
    // error and may retry. Watermarks report how deep the pipeline
    // actually ran.
    {
        DeviceGroup bg(DramConfig::forTesting(256, 512), kDevices);
        StreamExecutor bex(bg, {/*maxQueuedStreams=*/2,
                                BackpressurePolicy::Block});
        const uint16_t v = bex.defineObject(n, 16);
        const uint16_t w = bex.defineObject(n, 16);
        bex.writeObject(v, da);
        StreamBuilder bb(bex);
        std::vector<StreamHandle> handles;
        handles.push_back(bb.trsp(v).trsp(w).submit());
        for (int i = 0; i < 10; ++i) // runs ahead; Block throttles
            handles.push_back(
                bb.binary(OpKind::Add, w, v, v).submit());
        double blocked_ns = 0.0;
        for (auto &bh : handles)
            blocked_ns += bh.wait().backpressureWaitNs;
        std::printf("bounded: high watermark %zu (cap 2), "
                    "%.0f us spent blocked\n",
                    bex.queueHighWatermark(), blocked_ns / 1e3);
    }

    // --- Part 4: fault-tolerant execution ----------------------
    // A seeded FaultPlan corrupts the first three TRAs device 0
    // executes — a deterministic, reproducible in-DRAM failure.
    // With Checksum integrity the executor detects the corruption
    // against a host-side shadow, rolls the device back to its
    // pre-stream state, and retries under the RetryPolicy; the
    // caller just sees a correct result with attempts == 2.
    {
        DeviceGroup fg(DramConfig::forTesting(256, 512), kDevices);
        fg.setFaultInjector(
            0, FaultInjector::deterministic(FaultPlan{{0, 1, 2}}));
        StreamExecutorOptions fo;
        fo.integrityMode = IntegrityMode::Checksum;
        fo.retryPolicy = {/*maxAttempts=*/3, /*baseBackoffUs=*/0.0,
                          /*maxBackoffUs=*/0.0};
        StreamExecutor fex(fg, fo);
        const uint16_t fa = fex.defineObject(n, 16);
        const uint16_t fy = fex.defineObject(n, 16);
        fex.writeObject(fa, da);
        StreamBuilder fb(fex);
        const StreamResult fr = fb.trsp(fa)
                                    .trsp(fy)
                                    .binary(OpKind::Add, fy, fa, fa)
                                    .trspInv(fy)
                                    .submit()
                                    .wait();
        const auto fout = fex.readObject(fy);
        const uint64_t expect = (2 * da[7]) & 0xffff;
        std::printf("fault: %zu fault(s) detected, %zu attempt(s), "
                    "out[7] = %llu (expect %llu)\n",
                    fr.faultsDetected, fr.attempts,
                    static_cast<unsigned long long>(fout[7]),
                    static_cast<unsigned long long>(expect));
        if (fr.faultsDetected == 0 || fr.attempts != 2 ||
            fout[7] != expect) {
            std::printf("fault-injection smoke FAILED\n");
            return 1;
        }
    }

    // Merged statistics: counters and energy add across devices,
    // latency is the slowest device (they run concurrently).
    std::printf("group stats: %s\n",
                group.computeStats().summary().c_str());
    return 0;
}
