/**
 * @file
 * Image-processing scenario: saturating brightness adjustment of a
 * synthetic image, run functionally in DRAM (with per-pixel
 * verification) and priced at camera-pipeline scale.
 */

#include <cstdio>

#include "apps/brightness.h"
#include "common/rng.h"

using namespace simdram;

int
main()
{
    // ---- Functional run with explicit per-pixel check ------------------
    Processor proc(DramConfig::forTesting(256, 512));
    const size_t pixels = 512;
    const uint64_t delta = 90, cap = 255;

    Rng rng(2024);
    std::vector<uint64_t> img(pixels);
    for (auto &p : img)
        p = rng.below(256);

    auto vimg = proc.alloc(pixels, 16);
    auto vdelta = proc.alloc(pixels, 16);
    auto vcap = proc.alloc(pixels, 16);
    auto vsum = proc.alloc(pixels, 16);
    auto movf = proc.alloc(pixels, 1);
    auto vout = proc.alloc(pixels, 16);

    proc.store(vimg, img);
    proc.store(vdelta, std::vector<uint64_t>(pixels, delta));
    proc.store(vcap, std::vector<uint64_t>(pixels, cap));

    proc.run(OpKind::Add, vsum, vimg, vdelta);    // brighten
    proc.run(OpKind::Gt, movf, vsum, vcap);       // detect overflow
    proc.run(OpKind::IfElse, vout, vcap, vsum, movf); // saturate

    const auto out = proc.load(vout);
    size_t saturated = 0, wrong = 0;
    for (size_t i = 0; i < pixels; ++i) {
        const uint64_t expect = std::min(img[i] + delta, cap);
        if (out[i] != expect)
            ++wrong;
        if (out[i] == cap)
            ++saturated;
    }
    std::printf("brightness(+%llu) over %zu pixels: %zu saturated, "
                "%zu mismatches\n",
                static_cast<unsigned long long>(delta), pixels,
                saturated, wrong);

    const auto stats = proc.computeStats();
    std::printf("in-DRAM commands: %s\n", stats.summary().c_str());

    // ---- 4K-frame pipeline cost on every platform ----------------------
    const BrightnessSpec frame{3840 * 2160, 16};
    std::printf("\n4K frame (%zu pixels) on all platforms:\n",
                frame.pixels);
    auto engines = standardEngines();
    for (auto &e : engines) {
        const auto c = brightnessCost(*e, frame);
        std::printf("  %-10s  %9.3f ms   %9.4f mJ   (%.0f fps)\n",
                    e->name().c_str(), c.latencyNs() * 1e-6,
                    c.energyPj() * 1e-9, 1e9 / c.latencyNs());
    }
    return wrong == 0 ? 0 : 1;
}
